//! The shipped RV32IM kernels: real programs with data-dependent phase
//! structure, built with the in-crate [`Assembler`].
//!
//! Every kernel follows the same harness shape: initialize the stack pointer
//! and a 32-bit seed register, then loop forever over `fill` (regenerate the
//! input data from a linear-congruential generator seeded by the current
//! seed) and `body` (the actual kernel, returning a checksum in `a0`). After
//! each iteration the harness stores the checksum at [`CHECK_ADDR`] and the
//! iteration count at [`ITER_ADDR`], then perturbs the seed so no two
//! iterations process identical data. The looping form never halts — it is
//! an endless trace source; the `once` form replaces the back-edge with
//! `ebreak` so differential tests can run a single iteration to completion
//! and inspect the architectural state.
//!
//! Kernels are parameterized by [`WorkingSet`]: `Small` keeps the data
//! within the 32 KiB L1 data cache of the ISPASS-2010 configuration, `Large`
//! (the default used by the experiment drivers) straddles it, so cache
//! disabling schemes see realistic miss behavior.
//!
//! Determinism: the data is a pure function of the seed, the programs take
//! no input besides the seed, and the interpreter is exact — two runs of the
//! same kernel image retire bit-identical instruction streams.

use crate::asm::reg::{
    A0, A1, A2, A3, A4, A5, RA, S0, S1, S10, S11, S2, S3, S4, S5, S6, S7, S8, S9, SP, T0, T1, T2,
    T3, T4, T5, T6, ZERO,
};
use crate::asm::{Assembler, Program};
use crate::cpu::Cpu;
use crate::mem::SparseMemory;

/// Load address of the first kernel instruction.
pub const CODE_BASE: u32 = 0x0001_0000;
/// The harness stores the per-iteration checksum here.
pub const CHECK_ADDR: u32 = 0x000f_0000;
/// The harness stores the completed-iteration count here.
pub const ITER_ADDR: u32 = 0x000f_0004;
/// The compress kernel additionally stores its output length here.
pub const CMP_OUT_LEN_ADDR: u32 = 0x000f_0008;
/// Base of the kernel data region.
pub const DATA_BASE: u32 = 0x0010_0000;
/// Initial stack pointer (the stack grows down, far above the data).
pub const STACK_TOP: u32 = 0x0800_0000;

/// LCG multiplier (the classic glibc `rand` constant).
const LCG_MUL: u32 = 1_103_515_245;
/// LCG increment.
const LCG_ADD: u32 = 12_345;
/// Per-iteration seed perturbation (the 32-bit golden ratio).
const SEED_STEP: u32 = 0x9e37_79b9;
/// Fibonacci-hash multiplier used by the hash-join and compress kernels.
const HASH_MUL: u32 = 0x9e37_79b1;
/// Modulus for the matmul checksum's div/rem fold.
const CK_PRIME: u32 = 1_000_003;

/// Working-set size class relative to the 32 KiB L1 data cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkingSet {
    /// Data fits comfortably inside the L1 (≈ 6–16 KiB).
    Small,
    /// Data straddles the L1 (≈ 48–108 KiB) — the default for experiments.
    #[default]
    Large,
}

/// The four shipped kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RvKernel {
    /// Blocked dense 32-bit matrix multiply.
    Matmul,
    /// Recursive quicksort over a seeded array.
    Quicksort,
    /// Open-addressing hash-join build + probe.
    HashJoin,
    /// LZ-style byte compression with a trigram hash table.
    Compress,
}

impl RvKernel {
    /// Every kernel, in canonical order.
    pub const ALL: [Self; 4] = [
        Self::Matmul,
        Self::Quicksort,
        Self::HashJoin,
        Self::Compress,
    ];

    /// Short CLI name (the part after the `riscv:` prefix).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Matmul => "matmul",
            Self::Quicksort => "qsort",
            Self::HashJoin => "hashjoin",
            Self::Compress => "compress",
        }
    }

    /// Parses a [`Self::name`] string.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// One-line description for workload listings.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Self::Matmul => "blocked 48×48 integer matmul, 108 KiB working set, mul/div heavy",
            Self::Quicksort => "recursive quicksort of 12288 seeded words, call/return heavy",
            Self::HashJoin => "open-addressing hash join, 64 KiB table, pointer-chasing probes",
            Self::Compress => "LZ-style byte compressor with trigram hash table, 48 KiB input",
        }
    }

    /// Builds the endless (looping) kernel image at the default `Large`
    /// working set — the form the trace source runs.
    #[must_use]
    pub fn image(self, seed: u64) -> KernelImage {
        self.image_with(seed, WorkingSet::Large, true)
    }

    /// Builds a kernel image with explicit working-set size and loop form.
    /// `looping = false` produces the single-iteration variant that halts at
    /// `ebreak` after storing its checksum.
    #[must_use]
    pub fn image_with(self, seed: u64, ws: WorkingSet, looping: bool) -> KernelImage {
        let program = build_program(self, fold_seed(seed), ws, looping);
        let mut mem = SparseMemory::new();
        program.load_into(&mut mem);
        KernelImage {
            entry: program.base,
            mem,
        }
    }
}

impl std::fmt::Display for RvKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A loaded kernel: program image in memory plus its entry point.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// Initial pc.
    pub entry: u32,
    /// Memory with the program loaded (data is generated by the program
    /// itself, so nothing else is pre-seeded).
    pub mem: SparseMemory,
}

impl KernelImage {
    /// A CPU positioned at the kernel entry point.
    #[must_use]
    pub fn into_cpu(self) -> Cpu {
        Cpu::new(self.entry, self.mem)
    }
}

/// Folds a 64-bit experiment seed into the kernel's 32-bit seed register.
#[must_use]
pub fn fold_seed(seed: u64) -> u32 {
    (seed ^ (seed >> 32)) as u32
}

/// One LCG step (mirrored by the reference models in the tests).
#[cfg(test)]
fn lcg(state: u32) -> u32 {
    state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD)
}

fn build_program(kernel: RvKernel, seed32: u32, ws: WorkingSet, looping: bool) -> Program {
    let mut a = Assembler::new(CODE_BASE);
    // Shared harness: fill + body per iteration, publish checksum/count,
    // perturb the seed (kept live in s11 across the whole run; s10 counts).
    a.li(SP, STACK_TOP);
    a.li(S11, seed32);
    a.li(S10, 0);
    a.label("outer");
    a.call("fill");
    a.call("body");
    a.li(T0, CHECK_ADDR);
    a.sw(A0, 0, T0);
    a.addi(S10, S10, 1);
    a.sw(S10, 4, T0);
    a.li(T1, SEED_STEP);
    a.add(S11, S11, T1);
    if looping {
        a.j("outer");
    } else {
        a.ebreak();
    }
    match kernel {
        RvKernel::Matmul => emit_matmul(&mut a, ws),
        RvKernel::Quicksort => emit_quicksort(&mut a, ws),
        RvKernel::HashJoin => emit_hashjoin(&mut a, ws),
        RvKernel::Compress => emit_compress(&mut a, ws),
    }
    // simlint::allow(panic-path, "static in-crate programs; assembly is pinned by unit tests")
    a.finish().expect("kernel program assembles")
}

fn emit_fill_words(a: &mut Assembler, nwords: u32) {
    a.label("fill");
    a.li(T0, DATA_BASE);
    a.li(T1, nwords);
    a.mv(T2, S11);
    a.li(T3, LCG_MUL);
    a.li(T4, LCG_ADD);
    a.label("fill_loop");
    a.mul(T2, T2, T3);
    a.add(T2, T2, T4);
    a.sw(T2, 0, T0);
    a.addi(T0, T0, 4);
    a.addi(T1, T1, -1);
    a.bne(T1, ZERO, "fill_loop");
    a.ret();
}

// ---- matmul -----------------------------------------------------------------

fn matmul_dims(ws: WorkingSet) -> (u32, u32) {
    match ws {
        WorkingSet::Small => (32, 16), // 3 × 4 KiB matrices = 12 KiB
        WorkingSet::Large => (48, 16), // 3 × 9 KiB·4 = 108 KiB total
    }
}

fn emit_matmul(a: &mut Assembler, ws: WorkingSet) {
    let (n, bs) = matmul_dims(ws);
    let n4 = (n * 4) as i32;
    let b_base = DATA_BASE + n * n * 4;
    let c_base = DATA_BASE + 2 * n * n * 4;
    emit_fill_words(a, 2 * n * n); // A then B, contiguous

    // C[i][j] = Σk A[i][k]·B[k][j], j blocked by `bs`; checksum folds every
    // produced element and runs a divu/remu pass per row block.
    a.label("body");
    a.mv(S5, S11); // checksum
    a.li(S9, CK_PRIME);
    a.li(S0, 0); // jj
    a.label("mm_jj");
    a.li(S1, 0); // i
    a.label("mm_i");
    a.li(T0, n); // cptr = C + (i·n + jj)·4
    a.mul(T1, S1, T0);
    a.add(T1, T1, S0);
    a.slli(T1, T1, 2);
    a.li(T2, c_base);
    a.add(S3, T1, T2);
    a.mv(S2, S0); // j = jj
    a.label("mm_j");
    a.li(T0, n4 as u32); // aptr = A + i·n·4
    a.mul(S6, S1, T0);
    a.li(T2, DATA_BASE);
    a.add(S6, S6, T2);
    a.slli(S7, S2, 2); // bptr = B + j·4
    a.li(T2, b_base);
    a.add(S7, S7, T2);
    a.li(S4, 0); // acc
    a.li(S8, n); // k
    a.label("mm_k");
    a.lw(T0, 0, S6);
    a.lw(T1, 0, S7);
    a.mul(T0, T0, T1);
    a.add(S4, S4, T0);
    a.addi(S6, S6, 4);
    a.addi(S7, S7, n4); // column stride
    a.addi(S8, S8, -1);
    a.bne(S8, ZERO, "mm_k");
    a.sw(S4, 0, S3);
    a.addi(S3, S3, 4);
    a.slli(T0, S5, 5); // ck = ck·31 + acc
    a.sub(S5, T0, S5);
    a.add(S5, S5, S4);
    a.addi(S2, S2, 1);
    a.addi(T0, S0, bs as i32);
    a.blt(S2, T0, "mm_j");
    a.remu(T0, S5, S9); // per-row-block div/rem fold
    a.xor(S5, S5, T0);
    a.divu(T1, S5, S9);
    a.add(S5, S5, T1);
    a.addi(S1, S1, 1);
    a.li(T0, n);
    a.blt(S1, T0, "mm_i");
    a.addi(S0, S0, bs as i32);
    a.li(T0, n);
    a.blt(S0, T0, "mm_jj");
    a.mv(A0, S5);
    a.ret();
}

// ---- quicksort --------------------------------------------------------------

fn quicksort_words(ws: WorkingSet) -> u32 {
    match ws {
        WorkingSet::Small => 4096,  // 16 KiB
        WorkingSet::Large => 12288, // 48 KiB
    }
}

fn emit_quicksort(a: &mut Assembler, ws: WorkingSet) {
    let nw = quicksort_words(ws);
    emit_fill_words(a, nw);

    a.label("body");
    a.addi(SP, SP, -16);
    a.sw(RA, 0, SP);
    a.li(A0, DATA_BASE);
    a.li(A1, DATA_BASE + (nw - 1) * 4);
    a.call("qsort");
    a.li(T0, DATA_BASE); // checksum the sorted array
    a.li(T1, nw);
    a.li(A0, 0);
    a.label("qs_sum");
    a.lw(T2, 0, T0);
    a.slli(T3, A0, 5);
    a.sub(A0, T3, A0);
    a.add(A0, A0, T2);
    a.addi(T0, T0, 4);
    a.addi(T1, T1, -1);
    a.bne(T1, ZERO, "qs_sum");
    a.lw(RA, 0, SP);
    a.addi(SP, SP, 16);
    a.ret();

    // qsort(a0 = &first, a1 = &last), signed order, Lomuto partition with
    // the last element as pivot; recurses on both halves.
    a.label("qsort");
    a.bltu(A0, A1, "qs_go");
    a.ret();
    a.label("qs_go");
    a.addi(SP, SP, -16);
    a.sw(RA, 0, SP);
    a.sw(A0, 4, SP);
    a.sw(A1, 8, SP);
    a.lw(T0, 0, A1); // pivot
    a.mv(T1, A0); // store cursor
    a.mv(T2, A0); // scan cursor
    a.label("qs_part");
    a.bgeu(T2, A1, "qs_pdone");
    a.lw(T3, 0, T2);
    a.bge(T3, T0, "qs_skip");
    a.lw(T4, 0, T1); // swap *store, *scan
    a.sw(T3, 0, T1);
    a.sw(T4, 0, T2);
    a.addi(T1, T1, 4);
    a.label("qs_skip");
    a.addi(T2, T2, 4);
    a.j("qs_part");
    a.label("qs_pdone");
    a.lw(T3, 0, T1); // swap pivot into place
    a.lw(T4, 0, A1);
    a.sw(T4, 0, T1);
    a.sw(T3, 0, A1);
    a.sw(T1, 12, SP);
    a.addi(A1, T1, -4); // left half (a0 still = lo)
    a.call("qsort");
    a.lw(T1, 12, SP);
    a.addi(A0, T1, 4); // right half
    a.lw(A1, 8, SP);
    a.call("qsort");
    a.lw(RA, 0, SP);
    a.addi(SP, SP, 16);
    a.ret();
}

// ---- hash join --------------------------------------------------------------

/// (log2 slots, build keys, probes).
fn hashjoin_dims(ws: WorkingSet) -> (u32, u32, u32) {
    match ws {
        WorkingSet::Small => (11, 1024, 4096), // 2048 slots · 8 B = 16 KiB
        WorkingSet::Large => (13, 4096, 8192), // 8192 slots · 8 B = 64 KiB
    }
}

fn emit_hashjoin(a: &mut Assembler, ws: WorkingSet) {
    let (log2_slots, nkeys, nprobes) = hashjoin_dims(ws);
    let slots = 1u32 << log2_slots;
    let shift = (32 - log2_slots) as i32;

    // "fill" clears the table so each iteration builds from scratch.
    a.label("fill");
    a.li(T0, DATA_BASE);
    a.li(T1, slots * 2);
    a.label("fill_loop");
    a.sw(ZERO, 0, T0);
    a.addi(T0, T0, 4);
    a.addi(T1, T1, -1);
    a.bne(T1, ZERO, "fill_loop");
    a.ret();

    // Build: insert `nkeys` odd LCG keys (slot = [key, value]; key 0 = empty)
    // with linear probing, then probe `nprobes` times alternating between
    // present keys (LCG replay) and absent keys (even, never inserted).
    a.label("body");
    a.li(S8, DATA_BASE); // table base
    a.li(S9, slots - 1); // probe mask
    a.li(S7, HASH_MUL);
    a.mv(S2, S11); // build LCG
    a.li(S3, 0); // i
    a.li(S4, nkeys);
    a.label("hb_build");
    a.li(T6, LCG_MUL);
    a.mul(S2, S2, T6);
    a.li(T6, LCG_ADD);
    a.add(S2, S2, T6);
    a.ori(T0, S2, 1); // key (odd, never 0)
    a.mul(T2, T0, S7);
    a.srli(T2, T2, shift);
    a.label("hb_ins_scan");
    a.slli(T3, T2, 3);
    a.add(T3, T3, S8);
    a.lw(T5, 0, T3);
    a.beq(T5, ZERO, "hb_insert");
    a.beq(T5, T0, "hb_next"); // duplicate key: keep first
    a.addi(T2, T2, 1);
    a.and(T2, T2, S9);
    a.j("hb_ins_scan");
    a.label("hb_insert");
    a.sw(T0, 0, T3);
    a.sw(S3, 4, T3);
    a.label("hb_next");
    a.addi(S3, S3, 1);
    a.blt(S3, S4, "hb_build");

    a.mv(S2, S11); // replay build LCG → present keys
    a.li(T0, 0x5dee_ce66);
    a.xor(S5, S11, T0); // independent LCG → absent (even) keys
    a.li(S3, 0);
    a.li(S4, nprobes);
    a.li(A0, 0); // checksum
    a.li(S6, 0); // match count
    a.label("hb_probe");
    a.andi(T6, S3, 1);
    a.bne(T6, ZERO, "hb_abs");
    a.li(T6, LCG_MUL);
    a.mul(S2, S2, T6);
    a.li(T6, LCG_ADD);
    a.add(S2, S2, T6);
    a.ori(T0, S2, 1);
    a.j("hb_hash");
    a.label("hb_abs");
    a.li(T6, LCG_MUL);
    a.mul(S5, S5, T6);
    a.li(T6, LCG_ADD);
    a.add(S5, S5, T6);
    a.andi(T0, S5, -2); // even key: guaranteed miss
    a.label("hb_hash");
    a.mul(T2, T0, S7);
    a.srli(T2, T2, shift);
    a.label("hb_scan");
    a.slli(T3, T2, 3);
    a.add(T3, T3, S8);
    a.lw(T5, 0, T3);
    a.beq(T5, ZERO, "hb_miss");
    a.beq(T5, T0, "hb_hit");
    a.addi(T2, T2, 1);
    a.and(T2, T2, S9);
    a.j("hb_scan");
    a.label("hb_hit");
    a.lw(T4, 4, T3);
    a.slli(T6, A0, 5); // ck = ck·31 + value
    a.sub(A0, T6, A0);
    a.add(A0, A0, T4);
    a.addi(S6, S6, 1);
    a.label("hb_miss");
    a.addi(S3, S3, 1);
    a.blt(S3, S4, "hb_probe");
    a.slli(T6, A0, 5); // fold the match count in
    a.sub(A0, T6, A0);
    a.add(A0, A0, S6);
    a.ret();
}

// ---- compress ---------------------------------------------------------------

fn compress_len(ws: WorkingSet) -> u32 {
    match ws {
        WorkingSet::Small => 16_384,
        WorkingSet::Large => 49_152, // 48 KiB
    }
}

/// Output buffer (worst case = input size, all literals).
const CMP_OUT_BASE: u32 = DATA_BASE + 0x1_0000;
/// 1024-entry trigram hash table of `position + 1` words (0 = empty).
const CMP_HT_BASE: u32 = DATA_BASE + 0x2_0000;
const CMP_HT_ENTRIES: u32 = 1024;

fn emit_compress(a: &mut Assembler, ws: WorkingSet) {
    let n = compress_len(ws);
    let ht_shift = 32 - 10; // 10-bit trigram hash

    // "fill": n input bytes over a 16-symbol alphabet (compressible), then
    // clear the trigram table.
    a.label("fill");
    a.li(T0, DATA_BASE);
    a.li(T1, n);
    a.mv(T2, S11);
    a.li(T3, LCG_MUL);
    a.li(T4, LCG_ADD);
    a.label("fill_loop");
    a.mul(T2, T2, T3);
    a.add(T2, T2, T4);
    a.srli(T5, T2, 16);
    a.andi(T5, T5, 15);
    a.sb(T5, 0, T0);
    a.addi(T0, T0, 1);
    a.addi(T1, T1, -1);
    a.bne(T1, ZERO, "fill_loop");
    a.li(T0, CMP_HT_BASE);
    a.li(T1, CMP_HT_ENTRIES);
    a.label("fill_ht");
    a.sw(ZERO, 0, T0);
    a.addi(T0, T0, 4);
    a.addi(T1, T1, -1);
    a.bne(T1, ZERO, "fill_ht");
    a.ret();

    // LZ77 with a trigram hash table: a match token is
    // `[0x80 | (len-3), dist_lo, dist_hi]` (len 3–66, dist 1–65535); a
    // literal is the symbol byte itself (always < 0x80 here).
    a.label("body");
    a.li(S2, DATA_BASE); // src
    a.li(S1, n);
    a.li(S3, CMP_OUT_BASE); // out cursor
    a.mv(S6, S3); // out base
    a.li(S4, CMP_HT_BASE);
    a.li(S7, HASH_MUL);
    a.li(S0, 0); // i
    a.label("cm_loop");
    a.addi(T0, S0, 3);
    a.blt(S1, T0, "cm_tail"); // fewer than 3 bytes left
    a.add(T1, S2, S0); // trigram at i, little-endian
    a.lbu(T2, 0, T1);
    a.lbu(T3, 1, T1);
    a.lbu(T4, 2, T1);
    a.slli(T3, T3, 8);
    a.or(T2, T2, T3);
    a.slli(T4, T4, 16);
    a.or(T2, T2, T4);
    a.mul(T3, T2, S7);
    a.srli(T3, T3, ht_shift);
    a.slli(T3, T3, 2);
    a.add(T3, T3, S4);
    a.lw(T4, 0, T3); // candidate position + 1 (0 = none)
    a.addi(T5, S0, 1);
    a.sw(T5, 0, T3); // table now points at i
    a.beq(T4, ZERO, "cm_lit");
    a.addi(T4, T4, -1); // cand
    a.sub(T5, S1, S0); // maxlen = min(66, n - i)
    a.li(T6, 66);
    a.blt(T5, T6, "cm_maxok");
    a.mv(T5, T6);
    a.label("cm_maxok");
    a.li(T6, 0); // len
    a.add(A2, S2, T4); // &src[cand]
    a.add(A3, S2, S0); // &src[i]
    a.label("cm_ext");
    a.bge(T6, T5, "cm_extdone");
    a.add(A4, A2, T6);
    a.lbu(A4, 0, A4);
    a.add(A5, A3, T6);
    a.lbu(A5, 0, A5);
    a.bne(A4, A5, "cm_extdone");
    a.addi(T6, T6, 1);
    a.j("cm_ext");
    a.label("cm_extdone");
    a.li(A4, 3);
    a.blt(T6, A4, "cm_lit"); // too short: literal
    a.sub(A5, S0, T4); // dist (1..=65535 — input ≤ 48 KiB)
    a.addi(A4, T6, -3);
    a.ori(A4, A4, 0x80);
    a.sb(A4, 0, S3);
    a.sb(A5, 1, S3);
    a.srli(A5, A5, 8);
    a.sb(A5, 2, S3);
    a.addi(S3, S3, 3);
    a.add(S0, S0, T6);
    a.j("cm_loop");
    a.label("cm_lit");
    a.add(T1, S2, S0);
    a.lbu(T2, 0, T1);
    a.sb(T2, 0, S3);
    a.addi(S3, S3, 1);
    a.addi(S0, S0, 1);
    a.j("cm_loop");
    a.label("cm_tail"); // last 0–2 bytes as literals
    a.bge(S0, S1, "cm_cksum");
    a.add(T1, S2, S0);
    a.lbu(T2, 0, T1);
    a.sb(T2, 0, S3);
    a.addi(S3, S3, 1);
    a.addi(S0, S0, 1);
    a.j("cm_tail");
    a.label("cm_cksum");
    a.sub(A0, S3, S6); // output length
    a.li(T0, CMP_OUT_LEN_ADDR);
    a.sw(A0, 0, T0);
    a.mv(T0, S6); // fold every output byte
    a.label("cm_ck");
    a.bgeu(T0, S3, "cm_done");
    a.lbu(T1, 0, T0);
    a.slli(T2, A0, 5);
    a.sub(A0, T2, A0);
    a.add(A0, A0, T1);
    a.addi(T0, T0, 1);
    a.j("cm_ck");
    a.label("cm_done");
    a.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Trap;

    /// Steps until `ebreak`, with a generous cap against runaways.
    fn run_once(kernel: RvKernel, seed: u64, ws: WorkingSet) -> Cpu {
        let mut cpu = kernel.image_with(seed, ws, false).into_cpu();
        for _ in 0..40_000_000u64 {
            match cpu.step() {
                Ok(_) => continue,
                Err(Trap::Halt { .. }) => return cpu,
                Err(trap) => panic!("{kernel} trapped: {trap:?}"),
            }
        }
        panic!("{kernel} did not halt");
    }

    fn lcg_stream(seed32: u32) -> impl FnMut() -> u32 {
        let mut state = seed32;
        move || {
            state = lcg(state);
            state
        }
    }

    /// The shared `ck = ck·31 + v` fold.
    fn fold(ck: u32, v: u32) -> u32 {
        (ck << 5).wrapping_sub(ck).wrapping_add(v)
    }

    #[test]
    fn all_kernel_variants_assemble_and_fit_the_code_region() {
        for kernel in RvKernel::ALL {
            for ws in [WorkingSet::Small, WorkingSet::Large] {
                for looping in [false, true] {
                    let program = build_program(kernel, 1, ws, looping);
                    assert!(program.base + program.len_bytes() < CHECK_ADDR);
                }
            }
        }
    }

    fn matmul_reference(seed32: u32) -> u32 {
        let (n, bs) = matmul_dims(WorkingSet::Small);
        let (n, bs) = (n as usize, bs as usize);
        let mut next = lcg_stream(seed32);
        let a: Vec<u32> = (0..n * n).map(|_| next()).collect();
        let b: Vec<u32> = (0..n * n).map(|_| next()).collect();
        let mut ck = seed32;
        let mut jj = 0;
        while jj < n {
            for i in 0..n {
                for j in jj..jj + bs {
                    let mut acc = 0u32;
                    for k in 0..n {
                        acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
                    }
                    ck = fold(ck, acc);
                }
                ck ^= ck % CK_PRIME;
                ck = ck.wrapping_add(ck / CK_PRIME);
            }
            jj += bs;
        }
        ck
    }

    #[test]
    fn matmul_matches_the_reference_model() {
        let seed = 0x1234_5678_9abc_def0;
        let cpu = run_once(RvKernel::Matmul, seed, WorkingSet::Small);
        assert_eq!(cpu.mem().load_u32(ITER_ADDR), 1);
        assert_eq!(
            cpu.mem().load_u32(CHECK_ADDR),
            matmul_reference(fold_seed(seed))
        );
    }

    #[test]
    fn quicksort_sorts_exactly_the_seeded_array() {
        let seed = 42;
        let nw = quicksort_words(WorkingSet::Small) as usize;
        let cpu = run_once(RvKernel::Quicksort, seed, WorkingSet::Small);
        let sorted: Vec<i32> = (0..nw)
            .map(|i| cpu.mem().load_u32(DATA_BASE + 4 * i as u32) as i32)
            .collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "array not sorted");
        // Same multiset as the seeded input.
        let mut next = lcg_stream(fold_seed(seed));
        let mut expect: Vec<i32> = (0..nw).map(|_| next() as i32).collect();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        // And the checksum is the 31-fold of the sorted values.
        let ck = expect.iter().fold(0u32, |ck, &v| fold(ck, v as u32));
        assert_eq!(cpu.mem().load_u32(CHECK_ADDR), ck);
    }

    fn hashjoin_reference(seed32: u32) -> u32 {
        let (log2_slots, nkeys, nprobes) = hashjoin_dims(WorkingSet::Small);
        let slots = 1usize << log2_slots;
        let mask = slots - 1;
        let shift = 32 - log2_slots;
        let hash = |key: u32| (key.wrapping_mul(HASH_MUL) >> shift) as usize;
        let mut table = vec![(0u32, 0u32); slots];
        let mut next = lcg_stream(seed32);
        for value in 0..nkeys {
            let key = next() | 1;
            let mut h = hash(key);
            loop {
                if table[h].0 == 0 {
                    table[h] = (key, value);
                    break;
                }
                if table[h].0 == key {
                    break; // keep first
                }
                h = (h + 1) & mask;
            }
        }
        let mut present = lcg_stream(seed32);
        let mut absent = lcg_stream(seed32 ^ 0x5dee_ce66);
        let mut ck = 0u32;
        let mut matches = 0u32;
        for i in 0..nprobes {
            let key = if i % 2 == 0 {
                present() | 1
            } else {
                absent() & !1
            };
            let mut h = hash(key);
            loop {
                if table[h].0 == 0 {
                    break;
                }
                if table[h].0 == key {
                    ck = fold(ck, table[h].1);
                    matches += 1;
                    break;
                }
                h = (h + 1) & mask;
            }
        }
        fold(ck, matches)
    }

    #[test]
    fn hashjoin_matches_the_reference_model() {
        let seed = 0xfeed_beef_0042;
        let cpu = run_once(RvKernel::HashJoin, seed, WorkingSet::Small);
        assert_eq!(
            cpu.mem().load_u32(CHECK_ADDR),
            hashjoin_reference(fold_seed(seed))
        );
    }

    fn decompress(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < data.len() {
            let b = data[i];
            if b < 0x80 {
                out.push(b);
                i += 1;
            } else {
                let len = (b & 0x7f) as usize + 3;
                let dist = data[i + 1] as usize | ((data[i + 2] as usize) << 8);
                i += 3;
                let start = out.len() - dist;
                for k in 0..len {
                    let v = out[start + k];
                    out.push(v);
                }
            }
        }
        out
    }

    #[test]
    fn compressed_output_decompresses_to_the_input() {
        let seed = 7;
        let n = compress_len(WorkingSet::Small) as usize;
        let cpu = run_once(RvKernel::Compress, seed, WorkingSet::Small);
        let out_len = cpu.mem().load_u32(CMP_OUT_LEN_ADDR) as usize;
        assert!(out_len > 0 && out_len < n, "16-symbol data must compress");
        let out: Vec<u8> = (0..out_len)
            .map(|i| cpu.mem().load_u8(CMP_OUT_BASE + i as u32))
            .collect();
        let mut state = fold_seed(seed);
        let input: Vec<u8> = (0..n)
            .map(|_| {
                state = lcg(state);
                ((state >> 16) & 0xf) as u8
            })
            .collect();
        assert_eq!(decompress(&out), input);
    }

    #[test]
    fn kernels_are_deterministic() {
        for kernel in RvKernel::ALL {
            let mut a = kernel.image(99).into_cpu();
            let mut b = kernel.image(99).into_cpu();
            for _ in 0..20_000 {
                assert_eq!(a.step().ok(), b.step().ok());
            }
            assert_eq!(a, b, "{kernel} diverged");
        }
    }

    #[test]
    fn checksums_depend_on_the_seed() {
        let x = run_once(RvKernel::Matmul, 1, WorkingSet::Small);
        let y = run_once(RvKernel::Matmul, 2, WorkingSet::Small);
        assert_ne!(
            x.mem().load_u32(CHECK_ADDR),
            y.mem().load_u32(CHECK_ADDR),
            "checksum must be data-dependent"
        );
    }

    #[test]
    fn looping_variant_reaches_a_second_iteration() {
        let mut cpu = RvKernel::HashJoin
            .image_with(3, WorkingSet::Small, true)
            .into_cpu();
        for _ in 0..20_000_000u64 {
            cpu.step().expect("looping kernel never traps");
            if cpu.mem().load_u32(ITER_ADDR) >= 2 {
                return;
            }
        }
        panic!("second iteration never completed");
    }

    #[test]
    fn names_round_trip_through_parse() {
        for kernel in RvKernel::ALL {
            assert_eq!(RvKernel::parse(kernel.name()), Some(kernel));
        }
        assert_eq!(RvKernel::parse("nope"), None);
    }
}
