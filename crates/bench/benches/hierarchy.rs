//! Hot-path benchmark of the cache hierarchy's batched data-access entry
//! point: the perfect-L2 hierarchy against repair-protected (faulty) L2
//! organizations, at high and low voltage.
//!
//! Besides the criterion timings, the bench emits a machine-readable baseline
//! (`BENCH_hierarchy.json` at the workspace root) so future optimization work
//! on the access path has a pinned starting point: one entry per
//! configuration with the median/min ns-per-access over the sample set.
//!
//! Modes (flags after `--` on the cargo command line):
//!
//! - default: criterion timings + rewrite of the `BENCH_hierarchy.json`
//!   baseline (run this only on a quiet machine, deliberately).
//! - `--test`: one correctness pass per configuration, no timing, no baseline
//!   rewrite. The CI smoke mode.
//! - `--gate`: measure and compare against the pinned baseline; fails loudly
//!   if any configuration's fastest sample regressed more than
//!   [`GATE_TOLERANCE`] past the pinned median (see [`run_gate`] for why the
//!   minimum is the gated statistic). Never rewrites the baseline. The CI
//!   perf-gate mode.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use vccmin_core::cache::{
    AccessResult, CacheGeometry, CacheHierarchy, DisablingScheme, FaultMap, HierarchyConfig,
    VoltageMode,
};

/// Accesses per measured sample — large enough to touch every L2 set.
const STREAM_LEN: usize = 1 << 16;
/// Timed samples per configuration (plus one warm-up pass).
const SAMPLES: usize = 20;
/// Full-stream passes per sample; a sample records the fastest of them. The
/// minimum filters scheduler and noisy-neighbor interference (which only ever
/// adds time), so the median across samples estimates steady-state throughput
/// rather than machine load.
const PASSES_PER_SAMPLE: usize = 3;
/// `--gate` fails when a median regresses past baseline × (1 + tolerance).
const GATE_TOLERANCE: f64 = 0.15;

/// A deterministic mixed load/store stream: 70% hot accesses in a 256 KB
/// working set (L2 hits), 30% cold accesses over 16 MB (L2 misses), one store
/// in four — enough dirty evictions to exercise the write-back path.
fn address_stream() -> Vec<(u64, bool)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..STREAM_LEN)
        .map(|i| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let hot = (state >> 33) % 10 < 7;
            let addr = if hot {
                (state >> 8) % (256 * 1024)
            } else {
                (state >> 8) % (16 * 1024 * 1024)
            };
            (addr, i % 4 == 0)
        })
        .collect()
}

/// The benchmarked configurations: label + hierarchy.
fn hierarchies() -> Vec<(&'static str, CacheHierarchy)> {
    let l1_geom = CacheGeometry::ispass2010_l1();
    let l2_geom = CacheGeometry::ispass2010_l2();
    let map_i = FaultMap::generate(&l1_geom, 0.001, 1);
    let map_d = FaultMap::generate(&l1_geom, 0.001, 2);
    let l2_map = FaultMap::generate(&l2_geom, 0.001, 3);

    let high = HierarchyConfig::ispass2010(DisablingScheme::Baseline, VoltageMode::High);
    let low_l1 = HierarchyConfig::ispass2010(DisablingScheme::BlockDisabling, VoltageMode::Low);
    let low_both = low_l1.with_l2_scheme(DisablingScheme::BlockDisabling);
    let low_bitfix = HierarchyConfig::ispass2010(DisablingScheme::BitFix, VoltageMode::Low)
        .with_l2_scheme(DisablingScheme::BitFix);

    vec![
        ("high_voltage_perfect_l2", CacheHierarchy::new(high)),
        (
            "low_voltage_block_disable_l1_perfect_l2",
            CacheHierarchy::with_fault_maps(low_l1, Some(&map_i), Some(&map_d)).unwrap(),
        ),
        (
            "low_voltage_block_disable_l1_and_l2",
            CacheHierarchy::with_all_fault_maps(low_both, Some(&map_i), Some(&map_d), Some(&l2_map))
                .unwrap(),
        ),
        (
            "low_voltage_bit_fix_l1_and_l2",
            CacheHierarchy::with_all_fault_maps(
                low_bitfix,
                Some(&map_i),
                Some(&map_d),
                Some(&l2_map),
            )
            .unwrap(),
        ),
    ]
}

/// Runs the stream once through the hierarchy via the batched entry point,
/// returning a latency checksum so the work cannot be optimized away.
fn run_stream(
    h: &mut CacheHierarchy,
    stream: &[(u64, bool)],
    results: &mut Vec<AccessResult>,
) -> u64 {
    results.clear();
    h.access_data_batch(stream, results);
    results
        .iter()
        .fold(0u64, |acc, r| acc.wrapping_add(u64::from(r.latency)))
}

struct Measurement {
    name: &'static str,
    median_ns_per_access: f64,
    min_ns_per_access: f64,
    samples: usize,
}

/// Steady-state measurement of every configuration: one untimed warm-up pass
/// each, then `SAMPLES` rounds taken *round-robin* — sample `i` of every
/// configuration comes from round `i` — so a transient load spike on a shared
/// machine costs every configuration one sample instead of poisoning a whole
/// configuration's sample set. Each sample is the fastest of
/// [`PASSES_PER_SAMPLE`] consecutive full-stream passes over the warm
/// hierarchy.
fn measure_all(stream: &[(u64, bool)]) -> Vec<Measurement> {
    let mut hs = hierarchies();
    let mut results = Vec::with_capacity(stream.len());
    for (_, h) in &mut hs {
        black_box(run_stream(h, stream, &mut results));
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(SAMPLES); hs.len()];
    for _ in 0..SAMPLES {
        for (per_config, (_, h)) in samples.iter_mut().zip(&mut hs) {
            let best = (0..PASSES_PER_SAMPLE)
                .map(|_| {
                    let start = Instant::now();
                    black_box(run_stream(h, stream, &mut results));
                    start.elapsed().as_nanos() as f64 / stream.len() as f64
                })
                .fold(f64::INFINITY, f64::min);
            per_config.push(best);
        }
    }
    hs.iter()
        .zip(samples)
        .map(|((name, _), mut per_access)| {
            per_access.sort_by(|a, b| a.total_cmp(b));
            Measurement {
                name,
                median_ns_per_access: per_access[per_access.len() / 2],
                min_ns_per_access: per_access[0],
                samples: per_access.len(),
            }
        })
        .collect()
}

/// Writes the JSON baseline at the workspace root (hand-rolled: the workspace
/// vendors no JSON serializer).
fn write_baseline(measurements: &[Measurement]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hierarchy.json");
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"median_ns_per_access\": {:.2},\n      \"min_ns_per_access\": {:.2},\n      \"samples\": {}\n    }}",
                m.name, m.median_ns_per_access, m.min_ns_per_access, m.samples
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hierarchy_access_data\",\n  \"stream_accesses\": {},\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        STREAM_LEN,
        entries.join(",\n")
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("baseline written to BENCH_hierarchy.json"),
        Err(e) => eprintln!("could not write BENCH_hierarchy.json: {e}"),
    }
}

/// Extracts `"median_ns_per_access": <value>` for `name` from the hand-rolled
/// baseline JSON (the workspace vendors no JSON parser; the format is our own
/// fixed output, so positional scanning is exact).
fn baseline_median(json: &str, name: &str) -> Option<f64> {
    let entry = json.split("\"name\": \"").find_map(|chunk| {
        chunk
            .strip_prefix(&format!("{name}\""))
            .map(|rest| rest.to_string())
    })?;
    let value = entry.split("\"median_ns_per_access\": ").nth(1)?;
    let end = value.find([',', '\n', '}'])?;
    value[..end].trim().parse().ok()
}

/// `--gate`: measure every configuration and fail if its *fastest* sample
/// regressed more than [`GATE_TOLERANCE`] past the pinned baseline median.
///
/// The gated statistic is the run's minimum ns-per-access, not its median:
/// shared-runner interference only ever adds time, so the minimum is the
/// noise-robust estimator of steady-state throughput, while a genuine code
/// regression slows every pass — minimum included — and is still caught. The
/// pinned baseline *median* (which includes typical measurement noise) plus
/// the tolerance then gives organic headroom over the quiet-machine floor.
/// The baseline file is read-only here — a regressed run must never overwrite
/// the evidence.
fn run_gate(stream: &[(u64, bool)]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hierarchy.json");
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("gate needs the pinned BENCH_hierarchy.json baseline: {e}"));
    let mut regressions = Vec::new();
    for m in measure_all(stream) {
        let name = m.name;
        let baseline = baseline_median(&json, name)
            .unwrap_or_else(|| panic!("{name}: not found in BENCH_hierarchy.json"));
        let limit = baseline * (1.0 + GATE_TOLERANCE);
        let verdict = if m.min_ns_per_access <= limit { "ok" } else { "REGRESSED" };
        println!(
            "gate: {name}: min {:.2} (median {:.2}) ns/access vs baseline median {baseline:.2} (limit {limit:.2}) {verdict}",
            m.min_ns_per_access, m.median_ns_per_access
        );
        if m.min_ns_per_access > limit {
            regressions.push(format!(
                "{name}: fastest sample {:.2} ns/access > {limit:.2} (baseline median {baseline:.2} + {:.0}%)",
                m.min_ns_per_access,
                100.0 * GATE_TOLERANCE
            ));
        }
    }
    assert!(
        regressions.is_empty(),
        "hot-path perf gate failed:\n  {}",
        regressions.join("\n  ")
    );
    println!("gate: all configurations within {:.0}% of baseline", 100.0 * GATE_TOLERANCE);
}

fn bench_hierarchy_access(c: &mut Criterion) {
    let stream = address_stream();
    // `-- --test` (the CI smoke mode): one correctness pass per configuration,
    // no timing loops, and — crucially — no rewrite of the pinned
    // BENCH_hierarchy.json baseline with throwaway numbers.
    if std::env::args().any(|a| a == "--test") {
        let mut results = Vec::with_capacity(stream.len());
        for (name, mut hierarchy) in hierarchies() {
            let checksum = run_stream(&mut hierarchy, &stream, &mut results);
            assert!(checksum > 0, "{name}: the stream must accumulate latency");
            println!("test: {name} ok (latency checksum {checksum})");
        }
        return;
    }
    // `-- --gate` (the CI perf-gate mode): compare against the pinned baseline.
    if std::env::args().any(|a| a == "--gate") {
        run_gate(&stream);
        return;
    }
    // Take the baseline measurements for every configuration first, so the
    // criterion timing loops (long, and irrelevant to the pinned numbers)
    // cannot heat the machine mid-measurement.
    let measurements = measure_all(&stream);
    let mut group = c.benchmark_group("hierarchy_access_data");
    group.sample_size(SAMPLES).measurement_time(Duration::from_secs(10));
    for (name, mut hierarchy) in hierarchies() {
        let mut results = Vec::with_capacity(stream.len());
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_stream(&mut hierarchy, &stream, &mut results)))
        });
    }
    group.finish();
    write_baseline(&measurements);
}

criterion_group!(benches, bench_hierarchy_access);
criterion_main!(benches);
