//! Hot-path benchmark of `CacheHierarchy::access_data`: the perfect-L2
//! hierarchy against repair-protected (faulty) L2 organizations, at high and
//! low voltage.
//!
//! Besides the criterion timings, the bench emits a machine-readable baseline
//! (`BENCH_hierarchy.json` at the workspace root) so future optimization work
//! on the access path has a pinned starting point: one entry per
//! configuration with the median/min ns-per-access over the sample set.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use vccmin_core::cache::{
    CacheGeometry, CacheHierarchy, DisablingScheme, FaultMap, HierarchyConfig, VoltageMode,
};

/// Accesses per measured sample — large enough to touch every L2 set.
const STREAM_LEN: usize = 1 << 16;
/// Timed samples per configuration (plus one warm-up pass).
const SAMPLES: usize = 20;

/// A deterministic mixed load/store stream: 70% hot accesses in a 256 KB
/// working set (L2 hits), 30% cold accesses over 16 MB (L2 misses), one store
/// in four — enough dirty evictions to exercise the write-back path.
fn address_stream() -> Vec<(u64, bool)> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..STREAM_LEN)
        .map(|i| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let hot = (state >> 33) % 10 < 7;
            let addr = if hot {
                (state >> 8) % (256 * 1024)
            } else {
                (state >> 8) % (16 * 1024 * 1024)
            };
            (addr, i % 4 == 0)
        })
        .collect()
}

/// The benchmarked configurations: label + hierarchy.
fn hierarchies() -> Vec<(&'static str, CacheHierarchy)> {
    let l1_geom = CacheGeometry::ispass2010_l1();
    let l2_geom = CacheGeometry::ispass2010_l2();
    let map_i = FaultMap::generate(&l1_geom, 0.001, 1);
    let map_d = FaultMap::generate(&l1_geom, 0.001, 2);
    let l2_map = FaultMap::generate(&l2_geom, 0.001, 3);

    let high = HierarchyConfig::ispass2010(DisablingScheme::Baseline, VoltageMode::High);
    let low_l1 = HierarchyConfig::ispass2010(DisablingScheme::BlockDisabling, VoltageMode::Low);
    let low_both = low_l1.with_l2_scheme(DisablingScheme::BlockDisabling);
    let low_bitfix = HierarchyConfig::ispass2010(DisablingScheme::BitFix, VoltageMode::Low)
        .with_l2_scheme(DisablingScheme::BitFix);

    vec![
        ("high_voltage_perfect_l2", CacheHierarchy::new(high)),
        (
            "low_voltage_block_disable_l1_perfect_l2",
            CacheHierarchy::with_fault_maps(low_l1, Some(&map_i), Some(&map_d)).unwrap(),
        ),
        (
            "low_voltage_block_disable_l1_and_l2",
            CacheHierarchy::with_all_fault_maps(low_both, Some(&map_i), Some(&map_d), Some(&l2_map))
                .unwrap(),
        ),
        (
            "low_voltage_bit_fix_l1_and_l2",
            CacheHierarchy::with_all_fault_maps(
                low_bitfix,
                Some(&map_i),
                Some(&map_d),
                Some(&l2_map),
            )
            .unwrap(),
        ),
    ]
}

/// Runs the stream once through the hierarchy, returning a checksum so the
/// work cannot be optimized away.
fn run_stream(h: &mut CacheHierarchy, stream: &[(u64, bool)]) -> u64 {
    let mut acc = 0u64;
    for &(addr, write) in stream {
        acc = acc.wrapping_add(u64::from(h.access_data(addr, write).latency));
    }
    acc
}

struct Measurement {
    name: &'static str,
    median_ns_per_access: f64,
    min_ns_per_access: f64,
    samples: usize,
}

/// Steady-state measurement: one untimed warm-up pass, then `SAMPLES` timed
/// full-stream passes over the warm hierarchy.
fn measure(name: &'static str, h: &mut CacheHierarchy, stream: &[(u64, bool)]) -> Measurement {
    black_box(run_stream(h, stream));
    let mut per_access: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            black_box(run_stream(h, stream));
            start.elapsed().as_nanos() as f64 / stream.len() as f64
        })
        .collect();
    per_access.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        name,
        median_ns_per_access: per_access[per_access.len() / 2],
        min_ns_per_access: per_access[0],
        samples: per_access.len(),
    }
}

/// Writes the JSON baseline at the workspace root (hand-rolled: the workspace
/// vendors no JSON serializer).
fn write_baseline(measurements: &[Measurement]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hierarchy.json");
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"median_ns_per_access\": {:.2},\n      \"min_ns_per_access\": {:.2},\n      \"samples\": {}\n    }}",
                m.name, m.median_ns_per_access, m.min_ns_per_access, m.samples
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hierarchy_access_data\",\n  \"stream_accesses\": {},\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        STREAM_LEN,
        entries.join(",\n")
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("baseline written to BENCH_hierarchy.json"),
        Err(e) => eprintln!("could not write BENCH_hierarchy.json: {e}"),
    }
}

fn bench_hierarchy_access(c: &mut Criterion) {
    let stream = address_stream();
    // `-- --test` (the CI smoke mode): one correctness pass per configuration,
    // no timing loops, and — crucially — no rewrite of the pinned
    // BENCH_hierarchy.json baseline with throwaway numbers.
    if std::env::args().any(|a| a == "--test") {
        for (name, mut hierarchy) in hierarchies() {
            let checksum = run_stream(&mut hierarchy, &stream);
            assert!(checksum > 0, "{name}: the stream must accumulate latency");
            println!("test: {name} ok (latency checksum {checksum})");
        }
        return;
    }
    let mut measurements = Vec::new();
    let mut group = c.benchmark_group("hierarchy_access_data");
    group.sample_size(SAMPLES).measurement_time(Duration::from_secs(10));
    for (name, mut hierarchy) in hierarchies() {
        measurements.push(measure(name, &mut hierarchy, &stream));
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_stream(&mut hierarchy, &stream)))
        });
    }
    group.finish();
    write_baseline(&measurements);
}

criterion_group!(benches, bench_hierarchy_access);
criterion_main!(benches);
