//! Benchmarks (and regeneration) of the simulation figures: Fig. 8 (low voltage,
//! no-victim-cache baseline), Fig. 9 (low voltage, victim-cache baseline), Fig. 10
//! (6T vs 10T victim cells), Fig. 11 and Fig. 12 (high voltage).
//!
//! Each bench regenerates the corresponding figure from a scaled-down campaign (a
//! subset of benchmarks, short traces, a few fault-map pairs) and prints its series
//! means, so the bench log reports the same who-wins-by-how-much comparison the
//! paper makes. The full-scale campaign is available via the `vccmin-repro` CLI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use vccmin_bench::bench_params;
use vccmin_core::experiments::report::FigureTable;
use vccmin_core::experiments::simulation::{HighVoltageStudy, LowVoltageStudy};

fn print_means(tag: &str, table: &FigureTable) {
    let means: Vec<String> = table
        .series_labels
        .iter()
        .zip(table.series_means())
        .map(|(label, mean)| format!("{label}={:.1}%", 100.0 * mean.unwrap_or(0.0)))
        .collect();
    println!("[{tag}] {}", means.join("  "));
}

fn bench_low_voltage(c: &mut Criterion) {
    let params = bench_params();
    // Regenerate the figures once and print the headline means.
    let study = LowVoltageStudy::run(&params);
    print_means("fig8", &study.figure8());
    print_means("fig9", &study.figure9());
    print_means("fig10", &study.figure10());

    let mut group = c.benchmark_group("simulation_low_voltage");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("fig08_fig09_fig10_lowvolt_campaign", |b| {
        b.iter(|| black_box(LowVoltageStudy::run(black_box(&params))))
    });
    group.bench_function("fig08_lowvolt_no_vc_baseline", |b| {
        b.iter(|| black_box(study.figure8()))
    });
    group.bench_function("fig09_lowvolt_vc_baseline", |b| {
        b.iter(|| black_box(study.figure9()))
    });
    group.bench_function("fig10_victim_cell_type", |b| {
        b.iter(|| black_box(study.figure10()))
    });
    group.finish();
}

fn bench_high_voltage(c: &mut Criterion) {
    let params = bench_params();
    let study = HighVoltageStudy::run(&params);
    print_means("fig11", &study.figure11());
    print_means("fig12", &study.figure12());

    let mut group = c.benchmark_group("simulation_high_voltage");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("fig11_fig12_highvolt_campaign", |b| {
        b.iter(|| black_box(HighVoltageStudy::run(black_box(&params))))
    });
    group.bench_function("fig11_highvolt_no_vc", |b| {
        b.iter(|| black_box(study.figure11()))
    });
    group.bench_function("fig12_highvolt_vc", |b| {
        b.iter(|| black_box(study.figure12()))
    });
    group.finish();
}

criterion_group!(benches, bench_low_voltage, bench_high_voltage);
criterion_main!(benches);
