//! Benchmarks (and regeneration) of the analytical figures: Fig. 1 (voltage
//! scaling), Fig. 3 (faulty-block fraction), Fig. 4 (capacity distribution),
//! Fig. 5 (whole-cache failure), Fig. 6 (block-size sensitivity) and Fig. 7
//! (incremental word-disabling).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vccmin_core::experiments::analysis_figures as figures;

fn print_summary() {
    // Print each figure's headline numbers once so the bench log doubles as the
    // regenerated data set.
    let fig3 = figures::figure3(51);
    let half = fig3
        .rows
        .iter()
        .find(|(_, v)| v[0].unwrap_or(0.0) > 0.5)
        .map(|(k, _)| k.clone())
        .unwrap_or_default();
    println!("[fig3] faulty blocks exceed 50% at pfail ~ {half} (paper: ~0.0013)");

    let fig4 = figures::figure4();
    let (mode, _) = fig4
        .rows
        .iter()
        .max_by(|a, b| a.1[0].partial_cmp(&b.1[0]).unwrap())
        .unwrap();
    println!("[fig4] capacity distribution mode at {mode} (paper: ~0.58)");

    let fig5 = figures::figure5(51);
    let at_0001 = fig5
        .rows
        .iter()
        .find(|(k, _)| k.starts_with("0.00100"))
        .and_then(|(_, v)| v[0])
        .unwrap_or(0.0);
    println!("[fig5] P(whole-cache failure) at pfail=0.001: {at_0001:.4} (paper: ~1e-3)");

    let fig7 = figures::figure7(51);
    println!(
        "[fig7] incremental word-disable capacity at pfail=0: {:.2}, at pfail=0.01: {:.2}",
        fig7.rows[0].1[0].unwrap_or(f64::NAN),
        fig7.rows.last().unwrap().1[0].unwrap_or(f64::NAN)
    );
}

fn bench_analysis_figures(c: &mut Criterion) {
    print_summary();
    let mut group = c.benchmark_group("analysis_figures");
    group.bench_function("fig01_voltage_scaling", |b| {
        b.iter(|| black_box(figures::figure1(black_box(51))))
    });
    group.bench_function("fig03_faulty_blocks", |b| {
        b.iter(|| black_box(figures::figure3(black_box(51))))
    });
    group.bench_function("fig04_capacity_distribution", |b| {
        b.iter(|| black_box(figures::figure4()))
    });
    group.bench_function("fig05_whole_cache_failure", |b| {
        b.iter(|| black_box(figures::figure5(black_box(51))))
    });
    group.bench_function("fig06_block_size", |b| {
        b.iter(|| black_box(figures::figure6(black_box(51))))
    });
    group.bench_function("fig07_incremental_word_disable", |b| {
        b.iter(|| black_box(figures::figure7(black_box(51))))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis_figures);
criterion_main!(benches);
