//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * sensitivity of block-disabling capacity to the block size (the analytical side
//!   of Fig. 6, plus a simulated IPC check);
//! * sensitivity of the block-disabled cache to the per-cell failure probability;
//! * sensitivity of the victim-cache benefit to its entry count;
//! * the cost of the probability analysis primitives used throughout (urn model vs
//!   closed form);
//! * the run-level cost of each CPU backend on the identical trace (the
//!   out-of-order cycle loop vs the in-order per-instruction model) — reported
//!   for visibility, not gated like the hierarchy bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use vccmin_core::analysis::block_faults;
use vccmin_core::cache::{DisablingScheme, HierarchyConfig, VictimCacheConfig, VoltageMode};
use vccmin_core::{
    ArrayGeometry, Benchmark, CacheGeometry, CacheHierarchy, CoreModel, CpuConfig, FaultMap,
    Pipeline, TraceGenerator,
};

fn run_block_disabled(pfail: f64, victim_entries: Option<usize>, instructions: u64) -> f64 {
    let geom = CacheGeometry::ispass2010_l1();
    let mi = FaultMap::generate(&geom, pfail, 11);
    let md = FaultMap::generate(&geom, pfail, 22);
    let mut cfg = HierarchyConfig::ispass2010(DisablingScheme::BlockDisabling, VoltageMode::Low);
    if let Some(entries) = victim_entries {
        cfg = cfg.with_victim_caches(VictimCacheConfig {
            entries,
            ..VictimCacheConfig::ispass2010_10t()
        });
    }
    let hierarchy = CacheHierarchy::with_fault_maps(cfg, Some(&mi), Some(&md)).expect("maps fit");
    let mut pipeline = Pipeline::new(CpuConfig::ispass2010(), hierarchy);
    let mut trace = TraceGenerator::new(&Benchmark::Crafty.profile(), 42);
    pipeline.run(&mut trace, Some(instructions)).ipc()
}

fn bench_pfail_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pfail");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    for &pfail in &[0.0005, 0.001, 0.002] {
        let ipc = run_block_disabled(pfail, None, 20_000);
        println!("[ablation_pfail] crafty, block-disable, pfail={pfail}: IPC={ipc:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(pfail), &pfail, |b, &p| {
            b.iter(|| black_box(run_block_disabled(black_box(p), None, 20_000)))
        });
    }
    group.finish();
}

fn bench_victim_entries(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_victim_entries");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    for &entries in &[4usize, 8, 16, 32] {
        let ipc = run_block_disabled(0.001, Some(entries), 20_000);
        println!("[ablation_victim] crafty, block-disable, {entries}-entry V$: IPC={ipc:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, &e| {
            b.iter(|| black_box(run_block_disabled(0.001, Some(black_box(e)), 20_000)))
        });
    }
    group.finish();
}

fn run_core(core: CoreModel, instructions: u64) -> f64 {
    let cfg = HierarchyConfig::ispass2010_baseline_high_voltage();
    let hierarchy = CacheHierarchy::new(cfg);
    let mut cpu = core.build(hierarchy);
    let mut trace = TraceGenerator::new(&Benchmark::Crafty.profile(), 42);
    cpu.run(&mut trace, Some(instructions)).ipc()
}

fn bench_core_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_core_model");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    for core in CoreModel::ALL {
        let ipc = run_core(core, 20_000);
        println!("[ablation_core_model] crafty, {core} core: IPC={ipc:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(core), &core, |b, &m| {
            b.iter(|| black_box(run_core(black_box(m), 20_000)))
        });
    }
    group.finish();
}

fn bench_analysis_primitives(c: &mut Criterion) {
    let geom = ArrayGeometry::ispass2010_l1();
    for &block_bytes in &[32u64, 64, 128] {
        let g = geom.with_block_bytes(block_bytes).unwrap();
        println!(
            "[ablation_block_size] {block_bytes} B blocks: capacity at pfail=0.001 = {:.1}%",
            100.0 * block_faults::mean_capacity(&g, 0.001)
        );
    }
    let mut group = c.benchmark_group("ablation_analysis_primitives");
    group.bench_function("urn_model_exact_eq1", |b| {
        b.iter(|| black_box(block_faults::mean_faulty_blocks_exact(&geom, black_box(275)).unwrap()))
    });
    group.bench_function("closed_form_eq2", |b| {
        b.iter(|| black_box(block_faults::mean_faulty_blocks(&geom, black_box(0.001))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pfail_sensitivity,
    bench_victim_entries,
    bench_core_models,
    bench_analysis_primitives
);
criterion_main!(benches);
