//! Benchmark (and regeneration) of Table I: the transistor-overhead comparison of
//! the disabling schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vccmin_core::OverheadTable;

fn bench_overhead_table(c: &mut Criterion) {
    // Regenerate and print the table once so the bench log carries the data.
    let table = OverheadTable::ispass2010();
    for row in table.rows() {
        println!(
            "[table1] {:<24} total={} transistors (x{:.2} vs baseline)",
            row.scheme,
            row.total_transistors,
            table.relative_to_baseline(row.scheme).unwrap()
        );
    }

    c.bench_function("table1_overhead", |b| {
        b.iter(|| black_box(OverheadTable::ispass2010()))
    });
}

criterion_group!(benches, bench_overhead_table);
criterion_main!(benches);
