//! Shared helpers for the `vccmin` benchmark harness.
//!
//! The benches in `benches/` double as the figure-regeneration harness: each bench
//! group corresponds to one table or figure of the ISPASS 2010 paper, prints the
//! series it regenerates once (so `cargo bench` output contains the data), and then
//! measures how long the regeneration takes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Shared strict lint table — kept byte-identical in every workspace crate and
// applied per-crate (not via `[workspace.lints]`, which the vendored toolchain
// setup does not rely on). simlint's D-rules cover the determinism side; this
// table covers the general-correctness side.
#![deny(
    clippy::dbg_macro,
    clippy::exit,
    clippy::mem_forget,
    clippy::todo,
    clippy::unimplemented
)]
#![warn(
    clippy::explicit_iter_loop,
    clippy::manual_let_else,
    clippy::map_unwrap_or,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned
)]

use vccmin_core::experiments::simulation::SimulationParams;
use vccmin_core::Benchmark;

/// Simulation parameters used by the simulation-figure benches: a representative
/// subset of benchmarks and small traces so a full `cargo bench` stays in the
/// minutes range. The full-scale campaign is available through the `vccmin-repro`
/// CLI (`--instructions`, `--pairs`).
#[must_use]
pub fn bench_params() -> SimulationParams {
    SimulationParams {
        instructions: 20_000,
        fault_map_pairs: 3,
        workloads: vec![
            Benchmark::Crafty.into(),
            Benchmark::Gzip.into(),
            Benchmark::Mesa.into(),
            Benchmark::Sixtrack.into(),
            Benchmark::Mcf.into(),
            Benchmark::Swim.into(),
        ],
        ..SimulationParams::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_params_are_a_scaled_down_quick_campaign() {
        let p = bench_params();
        assert!(p.instructions < SimulationParams::quick().instructions);
        assert_eq!(p.pfail, 0.001);
        assert_eq!(p.workloads.len(), 6);
    }
}
