//! Branch prediction structures: gshare, return-address stack, and line predictor.
//!
//! Table II of the paper lists an 8 KB gshare predictor with 15 bits of global
//! history, a 16-entry return-address stack and a 6.5 KB line predictor. In a
//! trace-driven model the line predictor's job (predicting the next fetch block) is
//! subsumed by the branch-target information carried in the trace, so only its
//! misprediction effect on conditional branches and returns is modeled.

use crate::instruction::{BranchInfo, BranchKind};

/// A direction/target predictor for trace-driven simulation.
pub trait BranchPredictor {
    /// Predicts the branch at `pc` and updates internal state with the actual
    /// outcome. Returns `true` when the prediction was correct.
    fn predict_and_update(&mut self, pc: u64, info: &BranchInfo) -> bool;
}

/// Gshare conditional-branch predictor with a table of 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    history: u64,
    history_bits: u32,
    counters: Vec<u8>,
}

impl GsharePredictor {
    /// Creates a predictor with `history_bits` bits of global history and
    /// `2^history_bits` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 24.
    #[must_use]
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history_bits must be in 1..=24, got {history_bits}"
        );
        Self {
            history: 0,
            history_bits,
            counters: vec![2; 1 << history_bits], // weakly taken
        }
    }

    /// The paper's 15-bit-history (8 KB) gshare predictor.
    #[must_use]
    pub fn ispass2010() -> Self {
        Self::new(15)
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc` and updates the
    /// counters and history with the actual direction. Returns `true` when the
    /// predicted direction matches `taken`.
    pub fn predict_and_update_direction(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted_taken = self.counters[idx] >= 2;
        // Update the 2-bit saturating counter.
        if taken {
            if self.counters[idx] < 3 {
                self.counters[idx] += 1;
            }
        } else if self.counters[idx] > 0 {
            self.counters[idx] -= 1;
        }
        // Update the global history.
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
        predicted_taken == taken
    }
}

/// A 16-entry return-address stack.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with the given capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (on a call). The oldest entry is dropped on overflow.
    pub fn push(&mut self, return_addr: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_addr);
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current number of entries.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// The combined front-end predictor: gshare for conditional branches, RAS for
/// returns, and always-correct prediction for direct jumps/calls (their targets are
/// static and captured by the BTB/line predictor in a real machine).
#[derive(Debug, Clone)]
pub struct FrontEndPredictor {
    gshare: GsharePredictor,
    ras: ReturnAddressStack,
    /// Conditional branches seen / mispredicted (for statistics).
    pub conditional_branches: u64,
    /// Conditional branches mispredicted.
    pub mispredictions: u64,
}

impl FrontEndPredictor {
    /// Creates the paper's front-end predictor (15-bit gshare, 16-entry RAS).
    #[must_use]
    pub fn new(history_bits: u32, ras_entries: usize) -> Self {
        Self {
            gshare: GsharePredictor::new(history_bits),
            ras: ReturnAddressStack::new(ras_entries),
            conditional_branches: 0,
            mispredictions: 0,
        }
    }
}

impl BranchPredictor for FrontEndPredictor {
    fn predict_and_update(&mut self, pc: u64, info: &BranchInfo) -> bool {
        match info.kind {
            BranchKind::Conditional => {
                self.conditional_branches += 1;
                let correct = self.gshare.predict_and_update_direction(pc, info.taken);
                if !correct {
                    self.mispredictions += 1;
                }
                correct
            }
            BranchKind::Jump => true,
            BranchKind::Call => {
                // The return address is the instruction after the call.
                self.ras.push(pc.wrapping_add(4));
                true
            }
            BranchKind::Return => {
                let predicted = self.ras.pop();
                let correct = predicted == Some(info.target);
                if !correct {
                    self.mispredictions += 1;
                }
                correct
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_an_always_taken_branch() {
        let mut p = GsharePredictor::new(10);
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict_and_update_direction(0x1000, true) {
                correct += 1;
            }
        }
        assert!(correct >= 98, "always-taken branch should be learned, got {correct}/100");
    }

    #[test]
    fn gshare_learns_an_alternating_pattern_through_history() {
        let mut p = GsharePredictor::new(10);
        let mut correct_tail = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            let ok = p.predict_and_update_direction(0x2000, taken);
            if i >= 200 && ok {
                correct_tail += 1;
            }
        }
        assert!(
            correct_tail >= 190,
            "history should capture the alternation, got {correct_tail}/200"
        );
    }

    #[test]
    fn gshare_struggles_with_random_directions() {
        // A deterministic pseudo-random pattern: accuracy should be near 50%.
        let mut p = GsharePredictor::new(12);
        let mut state = 0x12345678u64;
        let mut correct = 0u32;
        let n = 2000;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (state >> 33) & 1 == 1;
            if p.predict_and_update_direction(0x3000, taken) {
                correct += 1;
            }
        }
        let acc = f64::from(correct) / f64::from(n);
        assert!((0.35..0.65).contains(&acc), "accuracy on random branches: {acc}");
    }

    #[test]
    #[should_panic(expected = "history_bits")]
    fn gshare_rejects_zero_history_bits() {
        let _ = GsharePredictor::new(0);
    }

    #[test]
    fn ras_predicts_well_nested_returns() {
        let mut ras = ReturnAddressStack::new(16);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(0x100);
        ras.push(0x200);
        ras.push(0x300);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(0x300));
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn front_end_predictor_handles_calls_and_returns() {
        let mut p = FrontEndPredictor::new(15, 16);
        let call = BranchInfo {
            kind: BranchKind::Call,
            taken: true,
            target: 0x8000,
        };
        assert!(p.predict_and_update(0x1000, &call));
        let ret = BranchInfo {
            kind: BranchKind::Return,
            taken: true,
            target: 0x1004,
        };
        assert!(p.predict_and_update(0x8000, &ret));
        // A second return with an empty RAS mispredicts.
        assert!(!p.predict_and_update(0x8004, &ret));
        assert_eq!(p.mispredictions, 1);
    }

    #[test]
    fn jumps_are_always_predicted_correctly() {
        let mut p = FrontEndPredictor::new(15, 16);
        let jump = BranchInfo {
            kind: BranchKind::Jump,
            taken: true,
            target: 0x9000,
        };
        for _ in 0..10 {
            assert!(p.predict_and_update(0x4000, &jump));
        }
        assert_eq!(p.mispredictions, 0);
    }
}
