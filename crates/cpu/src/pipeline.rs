//! The cycle-level out-of-order pipeline model.
//!
//! Each simulated cycle performs, in back-to-front order: commit, completion,
//! issue, dispatch and fetch. The model tracks the reorder buffer, the integer and
//! floating-point issue queues, the load/store queue, per-class functional-unit
//! availability, register dependences through a rename table, the gshare/RAS front
//! end, and the instruction- and data-side cache hierarchies.
//!
//! Branch mispredictions stall the front end until the branch resolves (issues and
//! executes); the subsequent pipeline-refill delay is modeled by the front-end depth
//! every fetched instruction must traverse before dispatch. Wrong-path instructions
//! themselves are not simulated — their primary performance effect (the refill
//! bubble) is captured, which is sufficient for the relative cache-organization
//! comparisons the paper makes.

use std::collections::VecDeque;

use vccmin_cache::CacheHierarchy;

use crate::branch::{BranchPredictor, FrontEndPredictor};
use crate::config::CpuConfig;
use crate::instruction::{OpClass, TraceInstruction, NUM_REGS};
use crate::result::SimResult;

/// A source of trace instructions for the pipeline.
///
/// Implemented for every iterator over [`TraceInstruction`], so a `Vec`'s iterator
/// or a lazily generating workload both work.
pub trait TraceSource {
    /// Returns the next instruction of the trace, or `None` when it is exhausted.
    fn next_instruction(&mut self) -> Option<TraceInstruction>;
}

impl<I> TraceSource for I
where
    I: Iterator<Item = TraceInstruction>,
{
    fn next_instruction(&mut self) -> Option<TraceInstruction> {
        self.next()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Dispatched into the ROB / issue queue, waiting for operands or resources.
    Waiting,
    /// Issued to a functional unit, executing.
    Issued,
    /// Execution finished; waiting to commit in order.
    Completed,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    op: OpClass,
    mem_addr: Option<u64>,
    mispredicted_branch: bool,
    deps: [Option<u64>; 2],
    state: EntryState,
    complete_cycle: u64,
}

#[derive(Debug, Clone)]
struct FetchedInstr {
    seq: u64,
    instr: TraceInstruction,
    ready_at: u64,
    mispredicted: bool,
}

/// The pipeline model: configuration, branch predictor and cache hierarchy.
#[derive(Debug)]
pub struct Pipeline {
    config: CpuConfig,
    hierarchy: CacheHierarchy,
    predictor: FrontEndPredictor,
}

impl Pipeline {
    /// Creates a pipeline with the given core configuration and cache hierarchy.
    #[must_use]
    pub fn new(config: CpuConfig, hierarchy: CacheHierarchy) -> Self {
        let predictor = FrontEndPredictor::new(config.gshare_history_bits, config.ras_entries);
        Self {
            config,
            hierarchy,
            predictor,
        }
    }

    /// The cache hierarchy (e.g. to inspect statistics after a run).
    #[must_use]
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Mutable access to the cache hierarchy.
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hierarchy
    }

    /// Resets every statistics counter (cache hierarchy, branch predictor)
    /// while preserving cache contents and predictor training state. Callers
    /// that issue multiple [`Pipeline::run`] calls on one pipeline (e.g. a
    /// voltage-mode governor executing consecutive same-mode segments) use
    /// this between calls so each [`SimResult`] reports *that segment's*
    /// counters instead of pipeline-lifetime cumulative ones.
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        self.predictor.conditional_branches = 0;
        self.predictor.mispredictions = 0;
    }

    /// Worst-case cycles to drain the machine before a voltage-mode transition:
    /// stop fetching, let every in-flight instruction (up to a full ROB,
    /// retiring `commit_width` per cycle) complete — including one outstanding
    /// access that missed all the way to memory — and discard the front-end
    /// stages. This is the pipeline-side component of a governor's transition
    /// cost; the cache-side component is
    /// [`RepairScheme::reconfiguration_cycles`](vccmin_cache::RepairScheme::reconfiguration_cycles).
    #[must_use]
    pub fn drain_cycles(&self) -> u64 {
        let cfg = &self.config;
        let rob_drain = (cfg.rob_entries as u64).div_ceil(u64::from(cfg.commit_width.max(1)));
        // The L2 hit latency includes any repair-scheme overhead, so a
        // repair-protected L2 stretches the drain bound like it stretches the
        // in-flight accesses it covers.
        let worst_memory_access = u64::from(
            self.hierarchy.l2_hit_latency() + self.hierarchy.config().memory_latency,
        );
        u64::from(cfg.front_end_depth) + rob_drain + worst_memory_access
    }

    /// Simulates the trace until it is exhausted or `max_instructions` have been
    /// committed, and returns the aggregate result.
    ///
    /// # Panics
    ///
    /// Panics if the simulation stops making forward progress (an internal
    /// invariant violation).
    pub fn run(
        &mut self,
        trace: &mut dyn TraceSource,
        max_instructions: Option<u64>,
    ) -> SimResult {
        let cfg = self.config;
        let l1i_hit_latency = {
            let hcfg = self.hierarchy.config();
            hcfg.l1i.hit_latency(hcfg.voltage)
        };
        let fetch_limit = max_instructions.unwrap_or(u64::MAX);

        let mut cycle: u64 = 0;
        let mut committed: u64 = 0;
        let mut fetched: u64 = 0;
        let mut loads: u64 = 0;
        let mut stores: u64 = 0;

        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(cfg.rob_entries);
        let mut fetch_queue: VecDeque<FetchedInstr> = VecDeque::new();
        let mut pending_fetch: Option<TraceInstruction> = None;
        let mut trace_done = false;

        // Rename table: architectural register -> seq of the in-flight producer.
        let mut reg_producer: [Option<u64>; NUM_REGS] = [None; NUM_REGS];

        let mut int_iq = 0usize;
        let mut fp_iq = 0usize;
        let mut lsq = 0usize;

        let mut next_seq: u64 = 0;
        let mut oldest_inflight_seq: u64 = 0; // sequences below this have committed

        // Front-end state.
        let mut fetch_stall_until: u64 = 0;
        let mut waiting_branch: Option<u64> = None;
        let mut current_fetch_block: Option<u64> = None;
        // The fetch queue models every front-end stage between fetch and dispatch, so
        // it must hold front_end_depth cycles' worth of fetch bandwidth (plus slack)
        // or it would artificially throttle the pipeline.
        let fetch_buffer_capacity = (cfg.fetch_width * (cfg.front_end_depth + 4)) as usize;

        // Progress watchdog.
        let mut last_progress_cycle: u64 = 0;
        let mut last_committed: u64 = 0;

        // Stores retiring in one cycle update the data cache as a single batch
        // (in commit order); both buffers are reused across cycles. The store
        // results are latency-irrelevant (retirement is off the critical path)
        // but the accesses themselves mutate the cache state, so they must
        // happen here, in program order.
        let mut store_batch: Vec<(u64, bool)> = Vec::with_capacity(cfg.commit_width as usize);
        let mut store_results = Vec::with_capacity(cfg.commit_width as usize);

        loop {
            // ------------------------------------------------------------------
            // 1. Commit: retire completed instructions in order.
            // ------------------------------------------------------------------
            let mut commits = 0;
            store_batch.clear();
            while commits < cfg.commit_width {
                match rob.front() {
                    Some(head) if head.state == EntryState::Completed && head.complete_cycle <= cycle => {}
                    _ => break,
                }
                let Some(head) = rob.pop_front() else { break };
                if head.op.is_mem() {
                    lsq -= 1;
                    if head.op == OpClass::Store {
                        // Stores update the data cache at retirement; the access
                        // latency is off the critical path of the pipeline.
                        if let Some(addr) = head.mem_addr {
                            store_batch.push((addr, true));
                        }
                        stores += 1;
                    } else {
                        loads += 1;
                    }
                }
                // Clear the rename table if this instruction is still the newest
                // producer of its destination register.
                for r in &mut reg_producer {
                    if *r == Some(head.seq) {
                        *r = None;
                    }
                }
                oldest_inflight_seq = head.seq + 1;
                committed += 1;
                commits += 1;
            }
            if !store_batch.is_empty() {
                store_results.clear();
                self.hierarchy.access_data_batch(&store_batch, &mut store_results);
            }

            // ------------------------------------------------------------------
            // 2. Completion: mark issued instructions whose execution finished.
            // ------------------------------------------------------------------
            for entry in &mut rob {
                if entry.state == EntryState::Issued && entry.complete_cycle <= cycle {
                    entry.state = EntryState::Completed;
                    if entry.mispredicted_branch && waiting_branch == Some(entry.seq) {
                        // The branch resolved: the front end may restart next cycle.
                        waiting_branch = None;
                        fetch_stall_until = fetch_stall_until.max(cycle + 1);
                    }
                }
            }

            // ------------------------------------------------------------------
            // 3. Issue: select ready instructions, oldest first.
            // ------------------------------------------------------------------
            let mut issued_this_cycle = 0u32;
            let mut int_alu_used = 0u32;
            let mut int_mul_used = 0u32;
            let mut fp_alu_used = 0u32;
            let mut fp_mul_used = 0u32;
            let mut mem_ports_used = 0u32;
            // Collect the completion status needed for dependence checks first to
            // avoid borrowing issues: a dependence is satisfied if the producer has
            // already committed (seq < oldest_inflight_seq) or is completed in the ROB.
            let completed_flags: Vec<(u64, bool)> = rob
                .iter()
                .map(|e| (e.seq, e.state == EntryState::Completed && e.complete_cycle <= cycle))
                .collect();
            let is_ready = |dep: u64, oldest: u64, flags: &[(u64, bool)]| -> bool {
                if dep < oldest {
                    return true;
                }
                flags
                    .iter()
                    .find(|(s, _)| *s == dep)
                    .is_none_or(|(_, done)| *done)
            };

            for entry in &mut rob {
                if issued_this_cycle >= cfg.issue_width {
                    break;
                }
                if entry.state != EntryState::Waiting {
                    continue;
                }
                let deps_ready = entry.deps.iter().all(|d| match d {
                    Some(dep) => is_ready(*dep, oldest_inflight_seq, &completed_flags),
                    None => true,
                });
                if !deps_ready {
                    continue;
                }
                // Functional-unit availability.
                let (used, limit): (&mut u32, u32) = match entry.op {
                    OpClass::IntAlu | OpClass::Branch => (&mut int_alu_used, cfg.int_alus),
                    OpClass::IntMul => (&mut int_mul_used, cfg.int_muls),
                    OpClass::FpAlu => (&mut fp_alu_used, cfg.fp_alus),
                    OpClass::FpMul => (&mut fp_mul_used, cfg.fp_muls),
                    OpClass::Load | OpClass::Store => (&mut mem_ports_used, cfg.mem_ports),
                };
                if *used >= limit {
                    continue;
                }
                *used += 1;
                issued_this_cycle += 1;

                // Execution latency.
                let latency = match entry.op {
                    OpClass::Load => {
                        // simlint::allow(panic-path, "dispatch stores an address for every memory op before it reaches issue")
                        let addr = entry.mem_addr.expect("loads carry an address");
                        let access = self.hierarchy.access_data(addr, false);
                        access.latency
                    }
                    other => cfg.exec_latency(other),
                };
                entry.state = EntryState::Issued;
                entry.complete_cycle = cycle + u64::from(latency.max(1));
                // Leaving the issue queue frees its entry.
                if entry.op.is_fp() {
                    fp_iq -= 1;
                } else {
                    int_iq -= 1;
                }
            }

            // ------------------------------------------------------------------
            // 4. Dispatch: move fetched instructions into the ROB / issue queues.
            // ------------------------------------------------------------------
            let mut dispatched = 0;
            while dispatched < cfg.decode_width {
                let Some(front) = fetch_queue.front() else { break };
                if front.ready_at > cycle || rob.len() >= cfg.rob_entries {
                    break;
                }
                let needs_fp = front.instr.op.is_fp();
                if needs_fp && fp_iq >= cfg.fp_iq_entries {
                    break;
                }
                if !needs_fp && int_iq >= cfg.int_iq_entries {
                    break;
                }
                if front.instr.is_mem() && lsq >= cfg.lsq_entries {
                    break;
                }
                let Some(fetched_instr) = fetch_queue.pop_front() else { break };
                let instr = fetched_instr.instr;
                let mut deps = [None, None];
                for (slot, src) in instr.srcs.iter().enumerate() {
                    if let Some(reg) = src {
                        deps[slot] = reg_producer[*reg as usize];
                    }
                }
                if let Some(dest) = instr.dest {
                    reg_producer[dest as usize] = Some(fetched_instr.seq);
                }
                if needs_fp {
                    fp_iq += 1;
                } else {
                    int_iq += 1;
                }
                if instr.is_mem() {
                    lsq += 1;
                }
                rob.push_back(RobEntry {
                    seq: fetched_instr.seq,
                    op: instr.op,
                    mem_addr: instr.mem_addr,
                    mispredicted_branch: fetched_instr.mispredicted,
                    deps,
                    state: EntryState::Waiting,
                    complete_cycle: u64::MAX,
                });
                dispatched += 1;
            }

            // ------------------------------------------------------------------
            // 5. Fetch: pull new instructions from the trace.
            // ------------------------------------------------------------------
            if waiting_branch.is_none() && cycle >= fetch_stall_until && !trace_done {
                let mut fetched_this_cycle = 0;
                while fetched_this_cycle < cfg.fetch_width
                    && fetch_queue.len() < fetch_buffer_capacity
                    && fetched < fetch_limit
                {
                    let instr = match pending_fetch.take() {
                        Some(i) => i,
                        None => match trace.next_instruction() {
                            Some(i) => i,
                            None => {
                                trace_done = true;
                                break;
                            }
                        },
                    };
                    // Instruction-cache access on a fetch-block change.
                    let block = instr.pc & !63;
                    if current_fetch_block != Some(block) {
                        let access = self.hierarchy.access_instr(instr.pc);
                        current_fetch_block = Some(block);
                        let extra = access.latency.saturating_sub(l1i_hit_latency);
                        if extra > 0 {
                            // The block is not available yet: stall the front end and
                            // retry this instruction when it arrives.
                            pending_fetch = Some(instr);
                            fetch_stall_until = cycle + u64::from(extra);
                            break;
                        }
                    }

                    let seq = next_seq;
                    next_seq += 1;
                    fetched += 1;
                    fetched_this_cycle += 1;

                    let mut mispredicted = false;
                    let mut taken = false;
                    if let Some(branch) = &instr.branch {
                        let correct = self.predictor.predict_and_update(instr.pc, branch);
                        mispredicted = !correct;
                        taken = branch.taken;
                        if taken {
                            // A taken branch redirects fetch to a new block.
                            current_fetch_block = None;
                        }
                    }
                    fetch_queue.push_back(FetchedInstr {
                        seq,
                        instr,
                        ready_at: cycle + u64::from(cfg.front_end_depth),
                        mispredicted,
                    });
                    if mispredicted {
                        waiting_branch = Some(seq);
                        break;
                    }
                    if taken {
                        // At most one taken branch per fetch cycle.
                        break;
                    }
                }
                if fetched >= fetch_limit {
                    trace_done = true;
                }
            }

            // ------------------------------------------------------------------
            // Termination and watchdog.
            // ------------------------------------------------------------------
            if trace_done && rob.is_empty() && fetch_queue.is_empty() && pending_fetch.is_none() {
                break;
            }
            if committed > last_committed {
                last_committed = committed;
                last_progress_cycle = cycle;
            }
            assert!(
                cycle - last_progress_cycle < 1_000_000,
                "pipeline made no forward progress for 1M cycles (deadlock?)"
            );
            cycle += 1;
        }

        SimResult {
            instructions: committed,
            cycles: cycle.max(1),
            loads,
            stores,
            conditional_branches: self.predictor.conditional_branches,
            branch_mispredictions: self.predictor.mispredictions,
            hierarchy: self.hierarchy.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{BranchInfo, BranchKind};
    use vccmin_cache::{DisablingScheme, HierarchyConfig, VoltageMode};

    fn baseline_pipeline() -> Pipeline {
        Pipeline::new(
            CpuConfig::ispass2010(),
            CacheHierarchy::new(HierarchyConfig::ispass2010_baseline_high_voltage()),
        )
    }

    fn run(trace: Vec<TraceInstruction>) -> SimResult {
        baseline_pipeline().run(&mut trace.into_iter(), None)
    }

    #[test]
    fn empty_trace_produces_empty_result() {
        let r = run(vec![]);
        assert_eq!(r.instructions, 0);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn committed_instruction_count_equals_trace_length() {
        let trace: Vec<_> = (0..5_000)
            .map(|i| TraceInstruction::alu(0x1000 + i * 4, OpClass::IntAlu))
            .collect();
        let r = run(trace);
        assert_eq!(r.instructions, 5_000);
    }

    #[test]
    fn independent_alu_ops_reach_multi_issue_ipc() {
        let trace: Vec<_> = (0..20_000)
            .map(|i| TraceInstruction::alu(0x1000 + (i % 256) * 4, OpClass::IntAlu))
            .collect();
        let r = run(trace);
        assert!(
            r.ipc() > 2.0,
            "independent single-cycle ops should exceed IPC 2, got {}",
            r.ipc()
        );
        assert!(r.ipc() <= 4.0 + 1e-9, "IPC cannot exceed the commit width");
    }

    #[test]
    fn ipc_never_exceeds_commit_width() {
        let trace: Vec<_> = (0..10_000)
            .map(|i| TraceInstruction::alu(0x2000 + (i % 64) * 4, OpClass::IntAlu))
            .collect();
        let r = run(trace);
        assert!(r.ipc() <= 4.0 + 1e-9);
        assert!(r.cycles >= 10_000 / 4);
    }

    #[test]
    fn dependent_chain_limits_ipc_to_one() {
        // Every instruction depends on the previous one through register 1.
        let trace: Vec<_> = (0..5_000)
            .map(|i| {
                TraceInstruction::alu(0x3000 + (i % 64) * 4, OpClass::IntAlu)
                    .with_dest(1)
                    .with_srcs(Some(1), None)
            })
            .collect();
        let r = run(trace);
        assert!(
            r.ipc() <= 1.05,
            "a serial dependence chain cannot exceed IPC 1, got {}",
            r.ipc()
        );
    }

    #[test]
    fn fp_heavy_code_is_limited_by_the_single_fp_alu() {
        let fp_trace: Vec<_> = (0..5_000)
            .map(|i| TraceInstruction::alu(0x4000 + (i % 64) * 4, OpClass::FpAlu).with_dest(40))
            .collect();
        let int_trace: Vec<_> = (0..5_000)
            .map(|i| TraceInstruction::alu(0x4000 + (i % 64) * 4, OpClass::IntAlu).with_dest(4))
            .collect();
        let fp = run(fp_trace);
        let int = run(int_trace);
        assert!(fp.ipc() <= 1.05, "1 FP ALU bounds FP IPC at 1, got {}", fp.ipc());
        assert!(int.ipc() > fp.ipc());
    }

    #[test]
    fn cache_missing_loads_are_slower_than_hitting_loads() {
        // Hitting loads: a tiny working set. Missing loads: a huge stride.
        let hits: Vec<_> = (0..5_000)
            .map(|i| TraceInstruction::load(0x5000 + (i % 16) * 4, 0x100_0000 + (i % 64) * 4, 2))
            .collect();
        let misses: Vec<_> = (0..5_000)
            .map(|i| TraceInstruction::load(0x5000 + (i % 16) * 4, 0x100_0000 + i * 4096, 2))
            .collect();
        let fast = run(hits);
        let slow = run(misses);
        assert!(
            fast.ipc() > slow.ipc() * 1.5,
            "missing loads should be much slower: {} vs {}",
            fast.ipc(),
            slow.ipc()
        );
        assert!(slow.hierarchy.l1d.miss_rate() > 0.9);
        assert!(fast.hierarchy.l1d.miss_rate() < 0.1);
    }

    #[test]
    fn mispredicted_branches_cost_pipeline_refills() {
        // Alternating taken/not-taken is learned by gshare; a pseudo-random pattern
        // is not. The random pattern must run slower.
        let mut state = 0x9e3779b97f4a7c15u64;
        let random: Vec<_> = (0..20_000)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                TraceInstruction::conditional_branch(0x6000 + (i % 512) * 4, state & 1 == 1, 0x7000)
            })
            .collect();
        let predictable: Vec<_> = (0..20_000)
            .map(|i| TraceInstruction::conditional_branch(0x6000 + (i % 512) * 4, true, 0x7000))
            .collect();
        let r_random = run(random);
        let r_predictable = run(predictable);
        assert!(r_random.branch_mispredict_rate() > 0.3);
        assert!(r_predictable.branch_mispredict_rate() < 0.05);
        assert!(
            r_predictable.ipc() > r_random.ipc() * 1.5,
            "mispredictions should hurt: {} vs {}",
            r_predictable.ipc(),
            r_random.ipc()
        );
    }

    #[test]
    fn max_instructions_caps_the_run() {
        let trace: Vec<_> = (0..10_000)
            .map(|i| TraceInstruction::alu(0x1000 + i * 4, OpClass::IntAlu))
            .collect();
        let r = baseline_pipeline().run(&mut trace.into_iter(), Some(1_000));
        assert_eq!(r.instructions, 1_000);
    }

    #[test]
    fn stores_update_the_data_cache_at_commit() {
        let trace: Vec<_> = (0..1_000)
            .map(|i| TraceInstruction::store(0x8000 + (i % 16) * 4, 0x20_0000 + (i % 8) * 64, 3))
            .collect();
        let r = run(trace);
        assert_eq!(r.stores, 1_000);
        assert!(r.hierarchy.l1d.accesses >= 1_000);
    }

    #[test]
    fn calls_and_returns_use_the_ras() {
        let mut trace = Vec::new();
        for i in 0..500u64 {
            let call_pc = 0x9000 + i * 16;
            trace.push(TraceInstruction {
                pc: call_pc,
                op: OpClass::Branch,
                dest: None,
                srcs: [None, None],
                mem_addr: None,
                branch: Some(BranchInfo {
                    kind: BranchKind::Call,
                    taken: true,
                    target: 0xf000,
                }),
            });
            trace.push(TraceInstruction::alu(0xf000, OpClass::IntAlu));
            trace.push(TraceInstruction {
                pc: 0xf004,
                op: OpClass::Branch,
                dest: None,
                srcs: [None, None],
                mem_addr: None,
                branch: Some(BranchInfo {
                    kind: BranchKind::Return,
                    taken: true,
                    target: call_pc + 4,
                }),
            });
        }
        let r = run(trace);
        assert_eq!(r.instructions, 1_500);
        // Well-nested call/return pairs should be predicted almost perfectly.
        assert!(r.branch_mispredictions < 10);
    }

    #[test]
    fn drain_cycles_cover_rob_front_end_and_one_memory_round_trip() {
        let p = baseline_pipeline();
        // front_end_depth (10) + rob/commit (128/4 = 32) + L2 (20) + memory (255).
        assert_eq!(p.drain_cycles(), 10 + 32 + 20 + 255);
        // At low voltage memory is closer in cycles, so the drain bound shrinks.
        let low = Pipeline::new(
            CpuConfig::ispass2010(),
            CacheHierarchy::new(HierarchyConfig::ispass2010(
                DisablingScheme::Baseline,
                VoltageMode::Low,
            )),
        );
        assert!(low.drain_cycles() < p.drain_cycles());
    }

    #[test]
    fn word_disabled_hierarchy_is_slower_for_l1_resident_loads() {
        // A load-heavy loop whose working set fits in the L1: the extra cycle of
        // word-disabling shows up directly in the load-use latency.
        let make_trace = || -> Vec<TraceInstruction> {
            (0..20_000)
                .map(|i| {
                    TraceInstruction::load(0x5000 + (i % 16) * 4, 0x40_0000 + (i % 128) * 64, 2)
                        .with_srcs(Some(2), None)
                })
                .collect()
        };
        let baseline = run(make_trace());
        let mut word_pipeline = Pipeline::new(
            CpuConfig::ispass2010(),
            CacheHierarchy::new(HierarchyConfig::ispass2010(
                DisablingScheme::WordDisabling,
                VoltageMode::High,
            )),
        );
        let word = word_pipeline.run(&mut make_trace().into_iter(), None);
        assert!(
            word.ipc() < baseline.ipc(),
            "word-disabling's extra L1 cycle must cost performance: {} vs {}",
            word.ipc(),
            baseline.ipc()
        );
    }
}
