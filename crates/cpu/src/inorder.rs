//! A scalar stall-on-use in-order core model.
//!
//! The comparison axis to the out-of-order [`Pipeline`](crate::Pipeline): the
//! same front end (I-cache fetch blocks, gshare + RAS or static not-taken),
//! the same functional-unit latencies and the same cache hierarchy, but no
//! reorder buffer and no memory-level parallelism. Instructions issue strictly
//! in program order, at most [`InOrderConfig::issue_width`] per cycle; an
//! instruction stalls only when it *uses* a register whose producer has not
//! completed (stall-on-use, so a load's latency is hidden until its first
//! consumer), and the data cache is blocking — a miss occupies it until the
//! fill returns, so misses serialize instead of overlapping.
//!
//! Because issue order equals program order, the model advances
//! instruction-by-instruction instead of cycle-by-cycle: each instruction's
//! issue cycle is the maximum of the front-end availability, its operands'
//! ready cycles and the structural (width / functional-unit / memory-port)
//! constraints of its issue group. Cache accesses still happen in program
//! order, so the hierarchy state evolution is deterministic.

use vccmin_cache::CacheHierarchy;

use crate::branch::{BranchPredictor, FrontEndPredictor};
use crate::config::CpuConfig;
use crate::core::{CoreModel, Cpu};
use crate::instruction::{BranchInfo, BranchKind, OpClass, NUM_REGS};
use crate::pipeline::TraceSource;
use crate::result::SimResult;

/// The in-order sub-configuration layered on top of the shared [`CpuConfig`]
/// (which still provides cache/latency parameters, functional-unit counts and
/// the front-end depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InOrderConfig {
    /// Instructions issued per cycle (1 = scalar).
    pub issue_width: u32,
    /// Whether the shared gshare + RAS front end predicts branches; when
    /// `false`, conditional branches are statically predicted not-taken and
    /// returns always mispredict (no RAS).
    pub use_gshare: bool,
}

impl InOrderConfig {
    /// The default comparison core: scalar, with the shared gshare front end
    /// so the branch-prediction axis is held constant against the
    /// out-of-order core.
    #[must_use]
    pub fn scalar_stall_on_use() -> Self {
        Self {
            issue_width: 1,
            use_gshare: true,
        }
    }

    /// A scalar core with a static not-taken front end (the simplest possible
    /// fetch engine), for isolating how much the gshare front end contributes.
    #[must_use]
    pub fn static_not_taken() -> Self {
        Self {
            issue_width: 1,
            use_gshare: false,
        }
    }
}

impl Default for InOrderConfig {
    fn default() -> Self {
        Self::scalar_stall_on_use()
    }
}

/// Functional-unit class index for the per-cycle availability counters.
fn fu_index(op: OpClass) -> usize {
    match op {
        OpClass::IntAlu | OpClass::Branch => 0,
        OpClass::IntMul => 1,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 3,
        OpClass::Load | OpClass::Store => 4,
    }
}

/// The in-order core: shared structural configuration, in-order
/// sub-configuration, branch predictor and cache hierarchy.
#[derive(Debug)]
pub struct InOrderCore {
    config: CpuConfig,
    inorder: InOrderConfig,
    hierarchy: CacheHierarchy,
    predictor: FrontEndPredictor,
}

impl InOrderCore {
    /// Creates an in-order core with the given configurations and hierarchy.
    #[must_use]
    pub fn new(config: CpuConfig, inorder: InOrderConfig, hierarchy: CacheHierarchy) -> Self {
        let predictor = FrontEndPredictor::new(config.gshare_history_bits, config.ras_entries);
        Self {
            config,
            inorder,
            hierarchy,
            predictor,
        }
    }

    /// The cache hierarchy (e.g. to inspect statistics after a run).
    #[must_use]
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Mutable access to the cache hierarchy.
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hierarchy
    }

    /// Resets statistics counters while preserving cache contents and
    /// predictor training state (see [`crate::Pipeline::reset_stats`]).
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        self.predictor.conditional_branches = 0;
        self.predictor.mispredictions = 0;
    }

    /// Worst-case cycles to drain the core before a voltage-mode transition:
    /// the shallow in-order bound — flush the front end, let the (at most
    /// `issue_width`-deep) in-flight window complete, including one access
    /// that missed all the way to memory. There is no reorder buffer to
    /// retire, so this is far below the out-of-order bound.
    #[must_use]
    pub fn drain_cycles(&self) -> u64 {
        let worst_memory_access = u64::from(
            self.hierarchy.l2_hit_latency() + self.hierarchy.config().memory_latency,
        );
        u64::from(self.config.front_end_depth)
            + u64::from(self.inorder.issue_width.max(1))
            + worst_memory_access
    }

    /// Static not-taken prediction: no gshare, no RAS. Counts into the same
    /// predictor statistics fields so [`SimResult`] reporting is uniform.
    fn predict_static_not_taken(predictor: &mut FrontEndPredictor, info: &BranchInfo) -> bool {
        match info.kind {
            BranchKind::Conditional => {
                predictor.conditional_branches += 1;
                let correct = !info.taken;
                if !correct {
                    predictor.mispredictions += 1;
                }
                correct
            }
            // Direct jumps/calls have static targets; without a RAS every
            // return mispredicts.
            BranchKind::Jump | BranchKind::Call => true,
            BranchKind::Return => {
                predictor.mispredictions += 1;
                false
            }
        }
    }

    /// Simulates the trace until it is exhausted or `max_instructions` have
    /// been committed, and returns the aggregate result.
    pub fn run(
        &mut self,
        trace: &mut dyn TraceSource,
        max_instructions: Option<u64>,
    ) -> SimResult {
        let cfg = self.config;
        let issue_width = self.inorder.issue_width.max(1);
        let (l1i_hit_latency, l1d_hit_latency) = {
            let hcfg = self.hierarchy.config();
            (
                hcfg.l1i.hit_latency(hcfg.voltage),
                hcfg.l1d.hit_latency(hcfg.voltage),
            )
        };
        let fu_limits = [
            cfg.int_alus,
            cfg.int_muls,
            cfg.fp_alus,
            cfg.fp_muls,
            cfg.mem_ports,
        ];
        let limit = max_instructions.unwrap_or(u64::MAX);

        let mut committed: u64 = 0;
        let mut loads: u64 = 0;
        let mut stores: u64 = 0;

        // Cycle each architectural register's newest value becomes available.
        let mut reg_ready = [0u64; NUM_REGS];
        // Earliest cycle the next instruction may leave the front end; the
        // first instruction traverses the full front-end depth.
        let mut next_fetch: u64 = u64::from(cfg.front_end_depth);
        let mut current_fetch_block: Option<u64> = None;
        // Blocking data cache: earliest cycle the next memory op may access it.
        let mut mem_free: u64 = 0;
        // Issue-group (current cycle) structural accounting.
        let mut group_cycle: u64 = 0;
        let mut issued_in_group: u32 = 0;
        let mut fu_used = [0u32; 5];
        let mut last_complete: u64 = 0;

        while committed < limit {
            let Some(instr) = trace.next_instruction() else {
                break;
            };

            // Instruction-cache access on a fetch-block change; extra latency
            // over an L1I hit stalls the front end.
            let block = instr.pc & !63;
            if current_fetch_block != Some(block) {
                let access = self.hierarchy.access_instr(instr.pc);
                current_fetch_block = Some(block);
                next_fetch += u64::from(access.latency.saturating_sub(l1i_hit_latency));
            }

            // Earliest issue cycle: front end, then stall-on-use on source
            // operands, then the blocking data cache for memory ops.
            let mut issue = next_fetch;
            for src in instr.srcs.iter().flatten() {
                issue = issue.max(reg_ready[usize::from(*src)]);
            }
            if instr.is_mem() {
                issue = issue.max(mem_free);
            }

            // Structural constraints: at most `issue_width` instructions and
            // `fu_limits` per class per cycle. Program order guarantees
            // `issue >= group_cycle` here, so scanning forward terminates.
            let fu = fu_index(instr.op);
            loop {
                if issue > group_cycle {
                    group_cycle = issue;
                    issued_in_group = 0;
                    fu_used = [0; 5];
                }
                if issued_in_group < issue_width && fu_used[fu] < fu_limits[fu] {
                    fu_used[fu] += 1;
                    issued_in_group += 1;
                    break;
                }
                issue += 1;
            }

            // Execute: memory ops access the hierarchy in program order.
            let exec_latency = match instr.op {
                OpClass::Load => {
                    // simlint::allow(panic-path, "trace constructors attach an address to every memory op")
                    let addr = instr.mem_addr.expect("loads carry an address");
                    let access = self.hierarchy.access_data(addr, false);
                    mem_free = if access.latency > l1d_hit_latency {
                        // A miss blocks the cache until the fill returns.
                        issue + u64::from(access.latency)
                    } else {
                        issue + 1
                    };
                    loads += 1;
                    access.latency
                }
                OpClass::Store => {
                    // simlint::allow(panic-path, "trace constructors attach an address to every memory op")
                    let addr = instr.mem_addr.expect("stores carry an address");
                    let access = self.hierarchy.access_data(addr, true);
                    mem_free = if access.latency > l1d_hit_latency {
                        issue + u64::from(access.latency)
                    } else {
                        issue + 1
                    };
                    stores += 1;
                    // The write is posted; retirement is off the critical path.
                    cfg.exec_latency(OpClass::Store)
                }
                other => cfg.exec_latency(other),
            };
            let complete = issue + u64::from(exec_latency.max(1));
            if let Some(dest) = instr.dest {
                reg_ready[usize::from(dest)] = complete;
            }

            if let Some(branch) = &instr.branch {
                let correct = if self.inorder.use_gshare {
                    self.predictor.predict_and_update(instr.pc, branch)
                } else {
                    Self::predict_static_not_taken(&mut self.predictor, branch)
                };
                if branch.taken {
                    // A taken branch redirects fetch to a new block...
                    current_fetch_block = None;
                }
                if !correct {
                    // ...and a mispredicted one squashes the front end until
                    // the branch resolves, plus a full pipeline refill.
                    next_fetch = next_fetch.max(complete + u64::from(cfg.front_end_depth));
                } else if branch.taken {
                    // At most one taken branch per fetch cycle.
                    next_fetch = next_fetch.max(issue + 1);
                }
            }

            // Program order: no later instruction issues before this one.
            next_fetch = next_fetch.max(issue);
            last_complete = last_complete.max(complete);
            committed += 1;
        }

        SimResult {
            instructions: committed,
            cycles: last_complete.max(1),
            loads,
            stores,
            conditional_branches: self.predictor.conditional_branches,
            branch_mispredictions: self.predictor.mispredictions,
            hierarchy: self.hierarchy.stats(),
        }
    }
}

impl Cpu for InOrderCore {
    fn run(&mut self, trace: &mut dyn TraceSource, max_instructions: Option<u64>) -> SimResult {
        InOrderCore::run(self, trace, max_instructions)
    }

    fn hierarchy(&self) -> &CacheHierarchy {
        InOrderCore::hierarchy(self)
    }

    fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        InOrderCore::hierarchy_mut(self)
    }

    fn reset_stats(&mut self) {
        InOrderCore::reset_stats(self);
    }

    fn drain_cycles(&self) -> u64 {
        InOrderCore::drain_cycles(self)
    }

    fn model(&self) -> CoreModel {
        CoreModel::InOrder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::TraceInstruction;
    use crate::Pipeline;
    use vccmin_cache::{DisablingScheme, HierarchyConfig, VoltageMode};

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::ispass2010_baseline_high_voltage())
    }

    fn scalar_core() -> InOrderCore {
        InOrderCore::new(
            CpuConfig::ispass2010(),
            InOrderConfig::scalar_stall_on_use(),
            hierarchy(),
        )
    }

    fn run(trace: Vec<TraceInstruction>) -> SimResult {
        scalar_core().run(&mut trace.into_iter(), None)
    }

    #[test]
    fn empty_trace_produces_empty_result() {
        let r = run(vec![]);
        assert_eq!(r.instructions, 0);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn scalar_issue_caps_ipc_at_one() {
        // Long enough that the cold I-cache misses (which a scalar front end
        // cannot hide) amortize away.
        let trace: Vec<_> = (0..100_000)
            .map(|i| TraceInstruction::alu(0x1000 + (i % 256) * 4, OpClass::IntAlu))
            .collect();
        let r = run(trace);
        assert_eq!(r.instructions, 100_000);
        assert!(r.ipc() <= 1.0 + 1e-9, "scalar issue cannot exceed IPC 1, got {}", r.ipc());
        assert!(r.ipc() > 0.9, "independent single-cycle ops should approach IPC 1, got {}", r.ipc());
    }

    #[test]
    fn max_instructions_caps_the_run() {
        let trace: Vec<_> = (0..10_000)
            .map(|i| TraceInstruction::alu(0x1000 + i * 4, OpClass::IntAlu))
            .collect();
        let r = scalar_core().run(&mut trace.into_iter(), Some(1_000));
        assert_eq!(r.instructions, 1_000);
    }

    #[test]
    fn stall_on_use_hides_load_latency_until_the_consumer() {
        // A load followed immediately by its consumer stalls for the load-use
        // latency; padding the gap with independent work hides it.
        let make = |gap: usize| -> Vec<TraceInstruction> {
            let mut trace = Vec::new();
            for i in 0..2_000u64 {
                trace.push(TraceInstruction::load(
                    0x1000 + (i % 16) * 4,
                    0x40_0000 + (i % 64) * 64,
                    2,
                ));
                for g in 0..gap {
                    trace.push(TraceInstruction::alu(
                        0x2000 + (g as u64) * 4,
                        OpClass::IntAlu,
                    ));
                }
                trace.push(
                    TraceInstruction::alu(0x3000, OpClass::IntAlu)
                        .with_dest(3)
                        .with_srcs(Some(2), None),
                );
            }
            trace
        };
        let tight = run(make(0));
        let padded = run(make(4));
        // Same loads either way; the padded version does more work in no more
        // cycles per load-use pair, so its CPI must be lower.
        assert!(
            padded.cpi() < tight.cpi(),
            "independent work should hide the load-use latency: {} vs {}",
            padded.cpi(),
            tight.cpi()
        );
    }

    #[test]
    fn blocking_cache_serializes_independent_misses() {
        // Independent missing loads (distinct destinations, never consumed):
        // an OoO core overlaps them through the LSQ; the in-order blocking
        // cache serializes each full miss latency.
        let make = || -> Vec<TraceInstruction> {
            (0..2_000)
                .map(|i| {
                    TraceInstruction::load(0x1000 + (i % 16) * 4, 0x100_0000 + i * 4096, (i % 8) as u8)
                })
                .collect()
        };
        let inorder = run(make());
        let mut ooo = Pipeline::new(CpuConfig::ispass2010(), hierarchy());
        let ooo_result = ooo.run(&mut make().into_iter(), None);
        assert!(inorder.hierarchy.l1d.miss_rate() > 0.9);
        assert!(
            inorder.cycles > ooo_result.cycles * 3,
            "misses that the OoO core overlaps must serialize in order: {} vs {}",
            inorder.cycles,
            ooo_result.cycles
        );
    }

    #[test]
    fn mispredicted_branches_cost_pipeline_refills() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let random: Vec<_> = (0..20_000)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                TraceInstruction::conditional_branch(0x6000 + (i % 512) * 4, state & 1 == 1, 0x7000)
            })
            .collect();
        let predictable: Vec<_> = (0..20_000)
            .map(|i| TraceInstruction::conditional_branch(0x6000 + (i % 512) * 4, true, 0x7000))
            .collect();
        let r_random = run(random);
        let r_predictable = run(predictable);
        assert!(r_random.branch_mispredict_rate() > 0.3);
        assert!(r_predictable.branch_mispredict_rate() < 0.05);
        assert!(
            r_predictable.ipc() > r_random.ipc() * 1.5,
            "mispredictions should hurt: {} vs {}",
            r_predictable.ipc(),
            r_random.ipc()
        );
    }

    #[test]
    fn static_not_taken_front_end_mispredicts_taken_branches() {
        let taken: Vec<_> = (0..5_000)
            .map(|i| TraceInstruction::conditional_branch(0x6000 + (i % 64) * 4, true, 0x7000))
            .collect();
        let mut static_core = InOrderCore::new(
            CpuConfig::ispass2010(),
            InOrderConfig::static_not_taken(),
            hierarchy(),
        );
        let r_static = static_core.run(&mut taken.clone().into_iter(), None);
        let r_gshare = run(taken);
        assert!(
            r_static.branch_mispredict_rate() > 0.99,
            "not-taken prediction must miss every taken branch, got {}",
            r_static.branch_mispredict_rate()
        );
        assert!(r_gshare.branch_mispredict_rate() < 0.05);
        assert!(r_gshare.ipc() > r_static.ipc() * 1.5);
    }

    #[test]
    fn wider_issue_helps_independent_work() {
        let trace: Vec<_> = (0..20_000)
            .map(|i| {
                TraceInstruction::alu(0x1000 + (i % 256) * 4, OpClass::IntAlu)
                    .with_dest((i % 8) as u8)
            })
            .collect();
        let mut wide = InOrderCore::new(
            CpuConfig::ispass2010(),
            InOrderConfig {
                issue_width: 2,
                use_gshare: true,
            },
            hierarchy(),
        );
        let r_wide = wide.run(&mut trace.clone().into_iter(), None);
        let r_scalar = run(trace);
        assert!(
            r_wide.ipc() > r_scalar.ipc() * 1.5,
            "dual issue should nearly double throughput on independent ops: {} vs {}",
            r_wide.ipc(),
            r_scalar.ipc()
        );
        assert!(r_wide.ipc() <= 2.0 + 1e-9);
    }

    #[test]
    fn drain_cycles_use_the_shallow_in_order_bound() {
        let core = scalar_core();
        // front_end_depth (10) + in-flight window (1) + L2 (20) + memory (255).
        assert_eq!(core.drain_cycles(), 10 + 1 + 20 + 255);
        let low = InOrderCore::new(
            CpuConfig::ispass2010(),
            InOrderConfig::scalar_stall_on_use(),
            CacheHierarchy::new(HierarchyConfig::ispass2010(
                DisablingScheme::Baseline,
                VoltageMode::Low,
            )),
        );
        assert!(low.drain_cycles() < core.drain_cycles());
    }

    #[test]
    fn reset_stats_clears_counters_but_keeps_training() {
        let trace: Vec<_> = (0..2_000)
            .map(|i| TraceInstruction::conditional_branch(0x6000 + (i % 64) * 4, true, 0x7000))
            .collect();
        let mut core = scalar_core();
        let first = core.run(&mut trace.clone().into_iter(), None);
        core.reset_stats();
        let second = core.run(&mut trace.into_iter(), None);
        assert!(first.conditional_branches == second.conditional_branches);
        assert!(
            second.branch_mispredictions <= first.branch_mispredictions,
            "training persists across reset_stats: {} vs {}",
            second.branch_mispredictions,
            first.branch_mispredictions
        );
    }
}
