//! The [`Cpu`] abstraction and the [`CoreModel`] campaign axis.
//!
//! Every consumer of a core — the scheme matrix, the voltage-mode governor, the
//! RISC-V kernel campaigns — drives it through the [`Cpu`] trait, so a study can
//! swap the out-of-order [`Pipeline`] for the in-order
//! [`InOrderCore`](crate::inorder::InOrderCore) (or any future backend) without
//! touching its own logic. [`CoreModel`] is the serializable/parsable selector
//! that campaigns thread through their parameters and the CLI exposes as
//! `--core`; [`CoreModel::build`] is the single factory path through which both
//! the simulation and governor executors construct cores.

use std::fmt;

use vccmin_cache::CacheHierarchy;

use crate::config::CpuConfig;
use crate::inorder::{InOrderConfig, InOrderCore};
use crate::pipeline::{Pipeline, TraceSource};
use crate::result::SimResult;

/// A trace-driven cycle-level CPU backend over a [`CacheHierarchy`].
///
/// Implementations must be deterministic: the same trace against the same
/// hierarchy and internal state yields the same [`SimResult`], bit for bit.
pub trait Cpu {
    /// Simulates the trace until it is exhausted or `max_instructions` have
    /// been committed, and returns the aggregate result.
    fn run(&mut self, trace: &mut dyn TraceSource, max_instructions: Option<u64>) -> SimResult;

    /// The cache hierarchy (e.g. to inspect statistics after a run).
    fn hierarchy(&self) -> &CacheHierarchy;

    /// Mutable access to the cache hierarchy (e.g. to reconfigure or warm it
    /// between runs).
    fn hierarchy_mut(&mut self) -> &mut CacheHierarchy;

    /// Resets every statistics counter (cache hierarchy, branch predictor)
    /// while preserving cache contents and predictor training state, so
    /// consecutive [`Cpu::run`] calls report per-segment counters.
    fn reset_stats(&mut self);

    /// Worst-case cycles to drain the machine before a voltage-mode
    /// transition. Each backend reports its own bound: the out-of-order core
    /// must retire up to a full reorder buffer, the in-order core only its
    /// shallow in-flight window.
    fn drain_cycles(&self) -> u64;

    /// Which [`CoreModel`] this backend implements.
    fn model(&self) -> CoreModel;

    /// Short stable name for reporting (`"ooo"` / `"in-order"`).
    fn name(&self) -> &'static str {
        self.model().name()
    }
}

impl Cpu for Pipeline {
    fn run(&mut self, trace: &mut dyn TraceSource, max_instructions: Option<u64>) -> SimResult {
        Pipeline::run(self, trace, max_instructions)
    }

    fn hierarchy(&self) -> &CacheHierarchy {
        Pipeline::hierarchy(self)
    }

    fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        Pipeline::hierarchy_mut(self)
    }

    fn reset_stats(&mut self) {
        Pipeline::reset_stats(self);
    }

    fn drain_cycles(&self) -> u64 {
        Pipeline::drain_cycles(self)
    }

    fn model(&self) -> CoreModel {
        CoreModel::OutOfOrder
    }
}

/// Which CPU backend a campaign simulates — a first-class study axis alongside
/// the repair scheme and the L2 protection level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CoreModel {
    /// The paper's Alpha-21264-like out-of-order core (Table II): MLP from the
    /// reorder buffer, issue queues and load/store queue hides much of each
    /// repair scheme's latency penalty.
    #[default]
    OutOfOrder,
    /// A scalar stall-on-use in-order core sharing the same cache/latency
    /// parameters: no MLP, so every extra cycle a scheme adds is exposed.
    InOrder,
}

impl CoreModel {
    /// Every core model, in reporting order (the default first).
    pub const ALL: [Self; 2] = [Self::OutOfOrder, Self::InOrder];

    /// CLI/report name of the out-of-order core.
    pub const OUT_OF_ORDER_NAME: &'static str = "ooo";

    /// CLI/report name of the in-order core.
    pub const IN_ORDER_NAME: &'static str = "in-order";

    /// Short stable name used in CLI flags, table labels and CSV columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::OutOfOrder => Self::OUT_OF_ORDER_NAME,
            Self::InOrder => Self::IN_ORDER_NAME,
        }
    }

    /// One-line description for `--list-cores`.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Self::OutOfOrder => {
                "out-of-order core of Table II (4-wide, 128-entry ROB, gshare + RAS); the default"
            }
            Self::InOrder => {
                "scalar stall-on-use in-order core (blocking data cache, shared gshare front end)"
            }
        }
    }

    /// Parses a CLI name (`"ooo"`, `"out-of-order"`, `"in-order"`, `"inorder"`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            Self::OUT_OF_ORDER_NAME | "out-of-order" | "o3" => Some(Self::OutOfOrder),
            Self::IN_ORDER_NAME | "inorder" => Some(Self::InOrder),
            _ => None,
        }
    }

    /// Builds this core over `hierarchy` with the paper's structural parameters
    /// — the one factory path shared by every campaign executor.
    #[must_use]
    pub fn build(self, hierarchy: CacheHierarchy) -> Box<dyn Cpu> {
        self.build_with_config(CpuConfig::ispass2010(), hierarchy)
    }

    /// Builds this core over `hierarchy` with an explicit [`CpuConfig`].
    #[must_use]
    pub fn build_with_config(self, config: CpuConfig, hierarchy: CacheHierarchy) -> Box<dyn Cpu> {
        match self {
            Self::OutOfOrder => Box::new(Pipeline::new(config, hierarchy)),
            Self::InOrder => Box::new(InOrderCore::new(
                config,
                InOrderConfig::scalar_stall_on_use(),
                hierarchy,
            )),
        }
    }
}

impl fmt::Display for CoreModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vccmin_cache::HierarchyConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::ispass2010_baseline_high_voltage())
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for core in CoreModel::ALL {
            assert_eq!(CoreModel::from_name(core.name()), Some(core));
            assert_eq!(core.to_string(), core.name());
        }
        assert_eq!(CoreModel::from_name("out-of-order"), Some(CoreModel::OutOfOrder));
        assert_eq!(CoreModel::from_name("inorder"), Some(CoreModel::InOrder));
        assert_eq!(CoreModel::from_name("vliw"), None);
    }

    #[test]
    fn default_is_the_out_of_order_core() {
        assert_eq!(CoreModel::default(), CoreModel::OutOfOrder);
        assert_eq!(CoreModel::ALL[0], CoreModel::OutOfOrder);
    }

    #[test]
    fn factory_builds_a_backend_that_reports_its_model() {
        for core in CoreModel::ALL {
            let cpu = core.build(hierarchy());
            assert_eq!(cpu.model(), core);
            assert_eq!(cpu.name(), core.name());
        }
    }

    #[test]
    fn trait_run_on_the_pipeline_matches_the_inherent_run() {
        use crate::instruction::{OpClass, TraceInstruction};
        let trace: Vec<TraceInstruction> = (0..4_000)
            .map(|i| TraceInstruction::alu(0x1000 + (i % 256) * 4, OpClass::IntAlu))
            .collect();
        let mut inherent = Pipeline::new(CpuConfig::ispass2010(), hierarchy());
        let direct = inherent.run(&mut trace.clone().into_iter(), None);
        let mut boxed = CoreModel::OutOfOrder.build(hierarchy());
        let via_trait = boxed.run(&mut trace.into_iter(), None);
        assert_eq!(direct, via_trait, "the trait must not change Pipeline behavior");
    }

    #[test]
    fn drain_bounds_differ_by_backend_depth() {
        let ooo = CoreModel::OutOfOrder.build(hierarchy());
        let inorder = CoreModel::InOrder.build(hierarchy());
        assert!(
            inorder.drain_cycles() < ooo.drain_cycles(),
            "the in-order core has no ROB to drain: {} vs {}",
            inorder.drain_cycles(),
            ooo.drain_cycles()
        );
    }
}
