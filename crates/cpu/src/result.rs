//! Simulation results.

use vccmin_cache::HierarchyStats;

/// Outcome of simulating a trace on the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimResult {
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Conditional branches committed.
    pub conditional_branches: u64,
    /// Branch mispredictions (conditional + return mispredictions).
    pub branch_mispredictions: u64,
    /// Cache-hierarchy counters at the end of the run.
    pub hierarchy: HierarchyStats,
}

impl SimResult {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Performance of this run normalized to a `baseline` run of the same trace
    /// (the y-axis of Figs. 8–12 of the paper): `IPC / IPC_baseline`.
    #[must_use]
    pub fn normalized_to(&self, baseline: &SimResult) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / baseline.ipc()
        }
    }

    /// L1 data-cache miss rate of the run.
    #[must_use]
    pub fn l1d_miss_rate(&self) -> f64 {
        self.hierarchy.l1d.miss_rate()
    }

    /// Branch misprediction rate over conditional branches.
    #[must_use]
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.conditional_branches == 0 {
            0.0
        } else {
            self.branch_mispredictions as f64 / self.conditional_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(instructions: u64, cycles: u64) -> SimResult {
        SimResult {
            instructions,
            cycles,
            loads: 0,
            stores: 0,
            conditional_branches: 0,
            branch_mispredictions: 0,
            hierarchy: HierarchyStats::default(),
        }
    }

    #[test]
    fn ipc_and_cpi_are_reciprocal() {
        let r = result(1000, 500);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.cpi() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_or_instructions_do_not_divide_by_zero() {
        assert_eq!(result(0, 0).ipc(), 0.0);
        assert_eq!(result(0, 0).cpi(), 0.0);
        assert_eq!(result(10, 0).ipc(), 0.0);
        assert_eq!(result(0, 10).cpi(), 0.0);
    }

    #[test]
    fn normalization_compares_ipc() {
        let fast = result(1000, 500);
        let slow = result(1000, 1000);
        assert!((slow.normalized_to(&fast) - 0.5).abs() < 1e-12);
        assert!((fast.normalized_to(&slow) - 2.0).abs() < 1e-12);
        assert_eq!(fast.normalized_to(&result(0, 0)), 0.0);
    }
}
