//! Processor configuration (Table II of the paper).

use crate::instruction::OpClass;

/// Structural parameters of the out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuConfig {
    /// Instructions fetched per cycle (4 in the paper).
    pub fetch_width: u32,
    /// Instructions decoded/dispatched per cycle (4).
    pub decode_width: u32,
    /// Instructions issued to functional units per cycle (6).
    pub issue_width: u32,
    /// Instructions committed per cycle (4).
    pub commit_width: u32,
    /// Reorder-buffer entries (128).
    pub rob_entries: usize,
    /// Integer issue-queue entries (40).
    pub int_iq_entries: usize,
    /// Floating-point issue-queue entries (20).
    pub fp_iq_entries: usize,
    /// Load/store-queue entries.
    pub lsq_entries: usize,
    /// Integer ALUs (4).
    pub int_alus: u32,
    /// Integer multiplier/dividers (4).
    pub int_muls: u32,
    /// Floating-point ALUs (1).
    pub fp_alus: u32,
    /// Floating-point multiplier/dividers (1).
    pub fp_muls: u32,
    /// Data-cache ports (loads/stores issued per cycle).
    pub mem_ports: u32,
    /// Cycles from fetch to dispatch (front-end depth); together with execution this
    /// yields the ~15-stage pipeline of the paper and sets the branch-misprediction
    /// refill penalty.
    pub front_end_depth: u32,
    /// Return-address-stack entries (16).
    pub ras_entries: usize,
    /// log2 of gshare pattern-history-table entries (15 bits of history → 32K
    /// two-bit counters ≈ 8 KB).
    pub gshare_history_bits: u32,
}

impl CpuConfig {
    /// The configuration of Table II of the paper (Alpha-21264-like core).
    #[must_use]
    pub fn ispass2010() -> Self {
        Self {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 6,
            commit_width: 4,
            rob_entries: 128,
            int_iq_entries: 40,
            fp_iq_entries: 20,
            lsq_entries: 64,
            int_alus: 4,
            int_muls: 4,
            fp_alus: 1,
            fp_muls: 1,
            mem_ports: 2,
            front_end_depth: 10,
            ras_entries: 16,
            gshare_history_bits: 15,
        }
    }

    /// Execution latency of an operation class, excluding any memory latency.
    #[must_use]
    pub fn exec_latency(&self, op: OpClass) -> u32 {
        match op {
            OpClass::IntAlu | OpClass::Branch | OpClass::Store => 1,
            OpClass::Load => 1,
            OpClass::IntMul => 7,
            OpClass::FpAlu => 4,
            OpClass::FpMul => 4,
        }
    }

    /// Number of functional units able to execute the operation class.
    #[must_use]
    pub fn units_for(&self, op: OpClass) -> u32 {
        match op {
            OpClass::IntAlu | OpClass::Branch => self.int_alus,
            OpClass::IntMul => self.int_muls,
            OpClass::FpAlu => self.fp_alus,
            OpClass::FpMul => self.fp_muls,
            OpClass::Load | OpClass::Store => self.mem_ports,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::ispass2010()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_table_two() {
        let c = CpuConfig::ispass2010();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.decode_width, 4);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.int_iq_entries, 40);
        assert_eq!(c.fp_iq_entries, 20);
        assert_eq!(c.int_alus, 4);
        assert_eq!(c.fp_alus, 1);
        assert_eq!(c.ras_entries, 16);
        assert_eq!(c.gshare_history_bits, 15);
    }

    #[test]
    fn latencies_and_units_are_sensible() {
        let c = CpuConfig::ispass2010();
        assert_eq!(c.exec_latency(OpClass::IntAlu), 1);
        assert!(c.exec_latency(OpClass::IntMul) > c.exec_latency(OpClass::IntAlu));
        assert_eq!(c.units_for(OpClass::IntAlu), 4);
        assert_eq!(c.units_for(OpClass::FpMul), 1);
        assert_eq!(c.units_for(OpClass::Load), c.mem_ports);
    }

    #[test]
    fn default_is_the_paper_configuration() {
        assert_eq!(CpuConfig::default(), CpuConfig::ispass2010());
    }
}
