//! Trace-driven cycle-level processor models behind a shared [`Cpu`] trait.
//!
//! This crate is the `sim-alpha`-like substrate of the ISPASS 2010 reproduction: a
//! cycle-level model of a high-performance out-of-order core with the structural
//! parameters of Table II of the paper (15-stage pipeline, gshare branch predictor,
//! 4-wide fetch/decode, 6-wide issue, 4-wide commit, 128-entry reorder buffer,
//! 40/20-entry integer/floating-point issue queues, a pool of functional units) on
//! top of the cache hierarchy provided by [`vccmin_cache`].
//!
//! Alongside the out-of-order [`Pipeline`] lives a scalar stall-on-use
//! [`InOrderCore`] — the comparison axis that re-examines the paper's
//! latency/capacity trade-offs where no memory-level parallelism hides a repair
//! scheme's extra cycles. Both backends implement [`Cpu`], and campaigns select
//! between them through the [`CoreModel`] axis (whose
//! [`build`](CoreModel::build) method is the single core-construction factory).
//!
//! The model is *trace driven*: instructions come from any [`TraceSource`]
//! (synthetic workload generators live in the `vccmin-workloads` crate) and carry
//! their operation class, register operands, memory address and branch outcome. The
//! pipeline extracts instruction- and memory-level parallelism exactly as the real
//! machine would: independent loads overlap their miss latencies, mispredicted
//! branches squash the front end for a full pipeline refill, and the reorder buffer,
//! issue queues and functional units bound the achievable IPC.
//!
//! What the model deliberately does *not* do is execute wrong-path instructions or
//! model data values — neither affects the relative cache-capacity/latency
//! trade-offs the paper studies.
//!
//! # Example
//!
//! ```
//! use vccmin_cpu::{CpuConfig, Pipeline, OpClass, TraceInstruction};
//! use vccmin_cache::{CacheHierarchy, HierarchyConfig};
//!
//! // A small loop of independent integer adds (the PCs wrap so the I-cache warms up).
//! let trace: Vec<TraceInstruction> = (0..10_000)
//!     .map(|i| TraceInstruction::alu(0x1000 + (i % 256) * 4, OpClass::IntAlu))
//!     .collect();
//! let hierarchy = CacheHierarchy::new(HierarchyConfig::ispass2010_baseline_high_voltage());
//! let mut pipeline = Pipeline::new(CpuConfig::ispass2010(), hierarchy);
//! let result = pipeline.run(&mut trace.into_iter(), None);
//! assert!(result.ipc() > 1.0, "independent ALU ops should sustain multi-issue IPC");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Shared strict lint table — kept byte-identical in every workspace crate and
// applied per-crate (not via `[workspace.lints]`, which the vendored toolchain
// setup does not rely on). simlint's D-rules cover the determinism side; this
// table covers the general-correctness side.
#![deny(
    clippy::dbg_macro,
    clippy::exit,
    clippy::mem_forget,
    clippy::todo,
    clippy::unimplemented
)]
#![warn(
    clippy::explicit_iter_loop,
    clippy::manual_let_else,
    clippy::map_unwrap_or,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned
)]

pub mod branch;
pub mod config;
pub mod core;
pub mod inorder;
pub mod instruction;
pub mod pipeline;
pub mod result;

pub use branch::{BranchPredictor, GsharePredictor, ReturnAddressStack};
pub use config::CpuConfig;
pub use core::{CoreModel, Cpu};
pub use inorder::{InOrderConfig, InOrderCore};
pub use instruction::{BranchInfo, BranchKind, OpClass, Reg, TraceInstruction};
pub use pipeline::{Pipeline, TraceSource};
pub use result::SimResult;
