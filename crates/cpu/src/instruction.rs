//! Trace instruction format consumed by the pipeline model.

/// An architectural register identifier.
///
/// Registers `0..32` are integer registers, `32..64` floating-point registers.
/// Register 31 (the Alpha zero register) is *not* special-cased here; workload
/// generators simply avoid using it as a dependence-carrying destination.
pub type Reg = u8;

/// Number of architectural registers tracked by the rename logic.
pub const NUM_REGS: usize = 64;

/// Operation class of a trace instruction, used for functional-unit selection and
/// execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OpClass {
    /// Integer ALU operation (add, logical, shift, compare).
    IntAlu,
    /// Integer multiply / divide.
    IntMul,
    /// Floating-point add / compare / convert.
    FpAlu,
    /// Floating-point multiply / divide / sqrt.
    FpMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control-flow instruction (conditional branch, jump, call, return).
    Branch,
}

impl OpClass {
    /// Whether the operation executes in the floating-point cluster.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, Self::FpAlu | Self::FpMul)
    }

    /// Whether the operation accesses data memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Self::Load | Self::Store)
    }
}

/// The kind of control-flow transfer a branch performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BranchKind {
    /// Conditional branch (predicted by the gshare predictor).
    Conditional,
    /// Unconditional direct jump (always taken; no prediction needed).
    Jump,
    /// Function call (pushes the return address onto the RAS).
    Call,
    /// Function return (predicted by the RAS).
    Return,
}

/// Control-flow information attached to a branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BranchInfo {
    /// Kind of branch.
    pub kind: BranchKind,
    /// Whether the branch is actually taken in the trace.
    pub taken: bool,
    /// Target address when taken.
    pub target: u64,
}

/// One instruction of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceInstruction {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the instruction produces a value.
    pub dest: Option<Reg>,
    /// Source registers (up to two).
    pub srcs: [Option<Reg>; 2],
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Branch information for control-flow instructions.
    pub branch: Option<BranchInfo>,
}

impl TraceInstruction {
    /// A register-to-register ALU-class instruction with no operands, useful for
    /// tests and micro-benchmarks.
    #[must_use]
    pub fn alu(pc: u64, op: OpClass) -> Self {
        Self {
            pc,
            op,
            dest: None,
            srcs: [None, None],
            mem_addr: None,
            branch: None,
        }
    }

    /// A load from `addr` into `dest`.
    #[must_use]
    pub fn load(pc: u64, addr: u64, dest: Reg) -> Self {
        Self {
            pc,
            op: OpClass::Load,
            dest: Some(dest),
            srcs: [None, None],
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// A store of `src` to `addr`.
    #[must_use]
    pub fn store(pc: u64, addr: u64, src: Reg) -> Self {
        Self {
            pc,
            op: OpClass::Store,
            dest: None,
            srcs: [Some(src), None],
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// A conditional branch at `pc` that is `taken` towards `target`.
    #[must_use]
    pub fn conditional_branch(pc: u64, taken: bool, target: u64) -> Self {
        Self {
            pc,
            op: OpClass::Branch,
            dest: None,
            srcs: [None, None],
            mem_addr: None,
            branch: Some(BranchInfo {
                kind: BranchKind::Conditional,
                taken,
                target,
            }),
        }
    }

    /// Builder-style: sets the destination register.
    #[must_use]
    pub fn with_dest(mut self, dest: Reg) -> Self {
        self.dest = Some(dest);
        self
    }

    /// Builder-style: sets the source registers.
    #[must_use]
    pub fn with_srcs(mut self, a: Option<Reg>, b: Option<Reg>) -> Self {
        self.srcs = [a, b];
        self
    }

    /// Whether the instruction is a memory operation.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.op.is_mem()
    }

    /// Whether the instruction is a control-flow instruction.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.op == OpClass::Branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_populate_the_right_fields() {
        let l = TraceInstruction::load(0x100, 0x2000, 5);
        assert_eq!(l.op, OpClass::Load);
        assert_eq!(l.mem_addr, Some(0x2000));
        assert_eq!(l.dest, Some(5));
        assert!(l.is_mem());
        assert!(!l.is_branch());

        let s = TraceInstruction::store(0x104, 0x2000, 5);
        assert_eq!(s.op, OpClass::Store);
        assert_eq!(s.srcs[0], Some(5));
        assert!(s.is_mem());

        let b = TraceInstruction::conditional_branch(0x108, true, 0x200);
        assert!(b.is_branch());
        assert_eq!(b.branch.unwrap().kind, BranchKind::Conditional);
        assert!(b.branch.unwrap().taken);

        let a = TraceInstruction::alu(0x10c, OpClass::IntAlu)
            .with_dest(3)
            .with_srcs(Some(1), Some(2));
        assert_eq!(a.dest, Some(3));
        assert_eq!(a.srcs, [Some(1), Some(2)]);
    }

    #[test]
    fn op_class_properties() {
        assert!(OpClass::FpMul.is_fp());
        assert!(OpClass::FpAlu.is_fp());
        assert!(!OpClass::IntAlu.is_fp());
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }
}
