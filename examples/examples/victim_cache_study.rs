//! Victim-cache ablation: how the victim cache turns block-disabling's variable
//! per-set associativity from a liability into an advantage (Section III.A and
//! Fig. 10 of the paper), and what 6T versus 10T victim cells cost.
//!
//! Run with: `cargo run --release -p vccmin-examples --example victim_cache_study`

use vccmin_core::analysis::victim;
use vccmin_core::cache::VictimCacheConfig;
use vccmin_core::{
    ArrayGeometry, Benchmark, CacheGeometry, CacheHierarchy, CpuConfig, DisablingScheme, FaultMap,
    HierarchyConfig, Pipeline, TraceGenerator, VoltageMode,
};

fn main() {
    let pfail = 0.001;

    // Analytical expectation for the victim cache itself (Section V).
    let vc_geom = ArrayGeometry::ispass2010_victim_cache();
    println!("== victim-cache survival below Vcc-min (16 entries, pfail = {pfail}) ==");
    println!(
        "expected faulty entries with 6T cells : {:.1}",
        victim::expected_faulty_entries(&vc_geom, pfail)
    );
    println!(
        "usable entries, 6T + disable bits     : {:.1} (paper conservatively assumes 8)",
        victim::expected_usable_entries(&vc_geom, vccmin_core::cache::CellTechnology::SixT, pfail)
    );
    println!(
        "usable entries, 10T cells             : {:.0}",
        victim::expected_usable_entries(&vc_geom, vccmin_core::cache::CellTechnology::TenT, pfail)
    );

    // Simulated effect on a capacity-sensitive benchmark over a few fault maps.
    let geometry = CacheGeometry::ispass2010_l1();
    let benchmark = Benchmark::Crafty;
    let instructions = 60_000;
    println!("\n== {benchmark} below Vcc-min, per fault map ==");
    println!(
        "{:>8} {:>10} {:>14} {:>18} {:>18}",
        "map", "usable", "no victim $", "victim $ (10T)", "victim $ (6T)"
    );
    let run = |config: HierarchyConfig, mi: &FaultMap, md: &FaultMap| -> f64 {
        let hierarchy =
            CacheHierarchy::with_fault_maps(config, Some(mi), Some(md)).expect("maps fit");
        let mut pipeline = Pipeline::new(CpuConfig::ispass2010(), hierarchy);
        let mut trace = TraceGenerator::new(&benchmark.profile(), 42);
        pipeline.run(&mut trace, Some(instructions)).ipc()
    };
    let base_cfg = HierarchyConfig::ispass2010(DisablingScheme::BlockDisabling, VoltageMode::Low);
    for seed in 0..5u64 {
        let mi = FaultMap::generate(&geometry, pfail, 100 + seed);
        let md = FaultMap::generate(&geometry, pfail, 200 + seed);
        let plain = run(base_cfg, &mi, &md);
        let vc10 = run(
            base_cfg.with_victim_caches(VictimCacheConfig::ispass2010_10t()),
            &mi,
            &md,
        );
        let vc6 = run(
            base_cfg.with_victim_caches(VictimCacheConfig::ispass2010_6t()),
            &mi,
            &md,
        );
        println!(
            "{:>8} {:>10} {:>14.3} {:>18.3} {:>18.3}",
            seed,
            md.fault_free_blocks(),
            plain,
            vc10,
            vc6
        );
    }
    println!("\nIPC spread across fault maps narrows once a victim cache backs the disabled sets,");
    println!("which is exactly the determinism argument of Section VI.A of the paper.");
}
