//! Regenerates Table I of the paper: the transistor overhead of the baseline,
//! word-disabling and block-disabling schemes, with and without victim caches.
//!
//! Run with: `cargo run --release -p vccmin-examples --example overhead_table`

use vccmin_core::OverheadTable;

fn main() {
    let table = OverheadTable::ispass2010();
    println!("Table I: overhead comparison (32 KB, 8-way, 64 B/block, 16-entry victim cache)");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "scheme", "tag", "disable", "victim $", "align net", "total", "vs base"
    );
    for row in table.rows() {
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>10} {:>12} {:>9.2}x",
            row.scheme,
            row.tag_transistors,
            row.disable_transistors,
            row.victim_transistors,
            if row.alignment_network { "yes" } else { "no" },
            row.total_transistors,
            table.relative_to_baseline(row.scheme).unwrap_or(f64::NAN)
        );
    }
    println!();
    println!(
        "block disabling adds {} transistors over the baseline; word disabling adds {}.",
        table.row("Block Disabling").unwrap().total_transistors
            - table.row("Baseline").unwrap().total_transistors,
        table.row("Word Disabling").unwrap().total_transistors
            - table.row("Baseline").unwrap().total_transistors,
    );
}
