//! A scaled-down version of the paper's main experiment (Figs. 8–10): every
//! SPEC-like benchmark, below Vcc-min, comparing word-disabling against
//! block-disabling with and without victim caches.
//!
//! The default run uses a handful of benchmarks, small traces and a few fault-map
//! pairs so it finishes in well under a minute. Pass `--full` to run all 26
//! benchmarks with the quick-campaign defaults (a few minutes).
//!
//! Run with: `cargo run --release -p vccmin-examples --example low_voltage_study [-- --full]`

use vccmin_core::experiments::simulation::{LowVoltageStudy, SimulationParams};
use vccmin_core::{Benchmark, SchemeConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let params = if full {
        SimulationParams::quick()
    } else {
        SimulationParams {
            instructions: 40_000,
            fault_map_pairs: 3,
            workloads: vec![
                Benchmark::Crafty.into(),
                Benchmark::Gzip.into(),
                Benchmark::Mesa.into(),
                Benchmark::Sixtrack.into(),
                Benchmark::Mcf.into(),
                Benchmark::Swim.into(),
            ],
            ..SimulationParams::quick()
        }
    };
    eprintln!(
        "running {} workloads x {} fault-map pairs x {} instructions ...",
        params.workloads.len(),
        params.fault_map_pairs,
        params.instructions
    );
    let study = LowVoltageStudy::run(&params);

    println!("{}", study.figure8());
    println!("{}", study.figure9());
    println!("{}", study.figure10());

    let word = study.average_normalized(SchemeConfig::WordDisabling, SchemeConfig::Baseline);
    let block = study.average_normalized(SchemeConfig::BlockDisabling, SchemeConfig::Baseline);
    let block_vc =
        study.average_normalized(SchemeConfig::BlockDisablingVictim10T, SchemeConfig::Baseline);
    println!("== headline comparison (paper: word 88.8%, block 91.7%, block+V$ 94.7%) ==");
    println!("word disabling        : {:.1}% of baseline", 100.0 * word);
    println!("block disabling       : {:.1}% of baseline", 100.0 * block);
    println!("block disabling + V$  : {:.1}% of baseline", 100.0 * block_vc);
    println!(
        "block disabling + V$ outperforms word disabling by {:.1}% on average",
        100.0 * (block_vc / word - 1.0)
    );
}
