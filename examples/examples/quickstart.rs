//! Quickstart: the whole library in one page.
//!
//! 1. Ask the probability analysis how much cache survives below Vcc-min.
//! 2. Sample a fault map and build a block-disabled cache hierarchy.
//! 3. Run a workload on the cycle-level core and compare against the baseline.
//!
//! Run with: `cargo run --release -p vccmin-examples --example quickstart`

use vccmin_core::analysis::{block_faults, capacity::CapacityDistribution};
use vccmin_core::cache::{DisablingScheme, HierarchyConfig, VoltageMode};
use vccmin_core::{
    ArrayGeometry, Benchmark, CacheGeometry, CacheHierarchy, CpuConfig, FaultMap, Pipeline,
    TraceGenerator,
};

fn main() {
    let pfail = 0.001;

    // ---------------------------------------------------------------- analysis --
    let array = ArrayGeometry::ispass2010_l1();
    let mean_capacity = block_faults::mean_capacity(&array, pfail);
    let dist = CapacityDistribution::new(&array, pfail);
    println!("== probability analysis (32 KB, 8-way, 64 B blocks, pfail = {pfail}) ==");
    println!("expected faulty cells      : {:.0}", block_faults::expected_faulty_cells(&array, pfail));
    println!("mean block-disable capacity: {:.1}%", 100.0 * mean_capacity);
    println!(
        "P[capacity > 50%]          : {:.4} (word-disabling always gives exactly 50%)",
        dist.prob_capacity_above(0.5)
    );

    // -------------------------------------------------------------- simulation --
    let geometry = CacheGeometry::ispass2010_l1();
    let map_i = FaultMap::generate(&geometry, pfail, 1);
    let map_d = FaultMap::generate(&geometry, pfail, 2);
    println!("\n== sampled fault maps ==");
    println!(
        "instruction cache: {} / {} blocks usable",
        map_i.fault_free_blocks(),
        geometry.blocks()
    );
    println!(
        "data cache       : {} / {} blocks usable",
        map_d.fault_free_blocks(),
        geometry.blocks()
    );

    let benchmark = Benchmark::Gzip;
    let instructions = 100_000;
    let run = |config: HierarchyConfig, with_maps: bool| {
        let hierarchy = if with_maps {
            CacheHierarchy::with_fault_maps(config, Some(&map_i), Some(&map_d))
                .expect("fault maps match the geometry")
        } else {
            CacheHierarchy::new(config)
        };
        let mut pipeline = Pipeline::new(CpuConfig::ispass2010(), hierarchy);
        let mut trace = TraceGenerator::new(&benchmark.profile(), 42);
        pipeline.run(&mut trace, Some(instructions))
    };

    println!("\n== {benchmark} below Vcc-min ({instructions} instructions) ==");
    let baseline = run(
        HierarchyConfig::ispass2010(DisablingScheme::Baseline, VoltageMode::Low),
        false,
    );
    let word = run(
        HierarchyConfig::ispass2010(DisablingScheme::WordDisabling, VoltageMode::Low),
        true,
    );
    let block = run(
        HierarchyConfig::ispass2010(DisablingScheme::BlockDisabling, VoltageMode::Low),
        true,
    );
    println!("baseline (ideal)  IPC = {:.3}", baseline.ipc());
    println!(
        "word disabling    IPC = {:.3}  ({:.1}% of baseline)",
        word.ipc(),
        100.0 * word.normalized_to(&baseline)
    );
    println!(
        "block disabling   IPC = {:.3}  ({:.1}% of baseline)",
        block.ipc(),
        100.0 * block.normalized_to(&baseline)
    );
}
