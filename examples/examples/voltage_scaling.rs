//! Regenerates the illustration of Fig. 1: how far dynamic voltage scaling reaches
//! with and without operation below Vcc-min, and what it costs in performance.
//!
//! Run with: `cargo run --release -p vccmin-examples --example voltage_scaling`

use vccmin_core::analysis::voltage::{OperatingRegion, VoltageScalingModel};

fn main() {
    let model = VoltageScalingModel::paper_illustration();
    let classic = model.classic_curve(21);
    let below = model.below_vccmin_curve(21);

    println!("Figure 1: voltage scaling vs power and performance (normalized)");
    println!(
        "{:>9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>12}",
        "freq", "V (a)", "P (a)", "perf(a)", "V (b)", "P (b)", "perf(b)", "region (b)"
    );
    for (c, b) in classic.iter().zip(&below) {
        let region = match model.region(b.frequency) {
            OperatingRegion::Cubic => "cubic",
            OperatingRegion::LowVoltage => "low voltage",
            OperatingRegion::Linear => "linear",
        };
        println!(
            "{:>9.2} | {:>8.2} {:>8.3} {:>8.2} | {:>8.2} {:>8.3} {:>8.2} {:>12}",
            c.frequency, c.voltage, c.power, c.performance, b.voltage, b.power, b.performance, region
        );
    }
    println!();
    println!(
        "operating below Vcc-min extends the cubic-power region from {:.0}% down to {:.0}% of nominal frequency,",
        100.0 * model.vccmin_frequency,
        100.0 * model.low_voltage_frequency
    );
    println!(
        "at the price of a sub-linear performance loss (up to {:.1}%) caused by the reduced cache capacity.",
        100.0 * model.low_voltage_perf_penalty
    );
}
