//! Regenerates the analytical figures of the paper (Figs. 3–7) as text tables:
//! faulty-block fraction, capacity distribution, whole-cache-failure probability,
//! block-size sensitivity and the incremental word-disabling capacity.
//!
//! Run with: `cargo run --release -p vccmin-examples --example capacity_analysis`

use vccmin_core::experiments::analysis_figures as figures;

fn main() {
    let steps = 26; // keep the printed tables readable
    println!("{}", figures::figure3(steps));
    println!("{}", figures::figure5(steps));
    println!("{}", figures::figure6(steps));
    println!("{}", figures::figure7(steps));

    // Figure 4 has 513 x-axis points; print a condensed view around the mode.
    let fig4 = figures::figure4();
    println!("Figure 4 (condensed): probability of cache capacity at pfail=0.001");
    for (key, values) in fig4.rows.iter().filter(|(_, v)| v[0].unwrap_or(0.0) > 1e-4) {
        let capacity: f64 = key.parse().unwrap_or(0.0);
        let bar = "#".repeat((values[0].unwrap_or(0.0) * 800.0) as usize);
        println!("{:>6.1}% | {bar}", 100.0 * capacity);
    }
}
