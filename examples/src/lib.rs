//! Library stub for the examples package; the runnable content lives in `examples/`.
